module Core_spec = Noc_spec.Core_spec
module Soc_spec = Noc_spec.Soc_spec
module Vi = Noc_spec.Vi
module Scenario = Noc_spec.Scenario

(* Block areas are the full placed macro footprints (logic plus private
   L1/L0 memories and local routing overhead) at 65 nm. *)
let core id name kind area freq dyn =
  Core_spec.make ~id ~name ~kind ~area_mm2:(2.5 *. area) ~freq_mhz:freq
    ~dynamic_mw:dyn ()

let cores =
  [|
    core 0 "arm_cpu0" Core_spec.Processor 2.2 550.0 120.0;
    core 1 "arm_cpu1" Core_spec.Processor 2.2 550.0 120.0;
    core 2 "l2_cache0" Core_spec.Cache 1.8 550.0 45.0;
    core 3 "l2_cache1" Core_spec.Cache 1.8 550.0 45.0;
    core 4 "dsp0" Core_spec.Dsp 1.6 450.0 85.0;
    core 5 "dsp1" Core_spec.Dsp 1.6 450.0 85.0;
    core 6 "dsp_mem0" Core_spec.Memory 1.2 450.0 25.0;
    core 7 "dsp_mem1" Core_spec.Memory 1.2 450.0 25.0;
    core 8 "sdram_ctrl" Core_spec.Memory 1.5 400.0 60.0;
    core 9 "sram0" Core_spec.Memory 1.0 400.0 20.0;
    core 10 "sram1" Core_spec.Memory 1.0 400.0 20.0;
    core 11 "dma" Core_spec.Dma 0.8 400.0 35.0;
    core 12 "vdec_fe" Core_spec.Accelerator 1.4 300.0 70.0;
    core 13 "vdec_be" Core_spec.Accelerator 1.4 300.0 70.0;
    core 14 "venc" Core_spec.Accelerator 1.5 300.0 75.0;
    core 15 "disp_ctrl" Core_spec.Accelerator 1.0 250.0 40.0;
    core 16 "camera_if" Core_spec.Io 0.7 250.0 30.0;
    core 17 "img_proc" Core_spec.Accelerator 1.3 300.0 65.0;
    core 18 "modem_dsp" Core_spec.Dsp 1.7 400.0 80.0;
    core 19 "modem_mem" Core_spec.Memory 0.9 400.0 18.0;
    core 20 "radio_if" Core_spec.Io 0.6 250.0 25.0;
    core 21 "audio_dsp" Core_spec.Dsp 0.9 250.0 35.0;
    core 22 "audio_io" Core_spec.Io 0.4 150.0 12.0;
    core 23 "usb_if" Core_spec.Io 0.5 250.0 20.0;
    core 24 "uart_gpio" Core_spec.Peripheral 0.3 100.0 8.0;
    core 25 "sec_acc" Core_spec.Accelerator 0.8 300.0 40.0;
  |]

let shared_memory_cores = [ 8; 9; 10; 11 ]

(* Traffic: CPU/L2/SDRAM hierarchy, DSP scratchpad traffic, a video decode
   pipeline into the display, a camera->imaging->encode chain, the modem
   subsystem, audio, and low-rate control fan-out.  Bandwidths in MB/s,
   latency constraints in NoC cycles (all >= 10: a single island crossing
   costs 9 cycles zero-load, and the 26-island design point of Fig. 2 must
   remain feasible). *)
let flows =
  Recipe.merge
    [
      (* CPU clusters against their L2s, L2 refills against SDRAM *)
      Recipe.pair ~src:0 ~dst:2 ~bw:1400.0 ~back:1000.0 ~lat:10 ();
      Recipe.pair ~src:1 ~dst:3 ~bw:1400.0 ~back:1000.0 ~lat:10 ();
      Recipe.pair ~src:2 ~dst:8 ~bw:700.0 ~back:900.0 ~lat:12 ();
      Recipe.pair ~src:3 ~dst:8 ~bw:700.0 ~back:900.0 ~lat:12 ();
      Recipe.pair ~src:0 ~dst:9 ~bw:300.0 ~back:350.0 ~lat:12 ();
      Recipe.pair ~src:1 ~dst:10 ~bw:300.0 ~back:350.0 ~lat:12 ();
      (* DSPs on their scratchpads and the shared SRAMs *)
      Recipe.pair ~src:4 ~dst:6 ~bw:800.0 ~back:800.0 ~lat:10 ();
      Recipe.pair ~src:5 ~dst:7 ~bw:800.0 ~back:800.0 ~lat:10 ();
      Recipe.pair ~src:4 ~dst:9 ~bw:250.0 ~back:250.0 ~lat:14 ();
      Recipe.pair ~src:5 ~dst:10 ~bw:250.0 ~back:250.0 ~lat:14 ();
      (* DMA moves blocks between the shared memories *)
      Recipe.hub ~center:11 ~spokes:[ 8; 9; 10 ] ~to_hub:400.0 ~from_hub:400.0
        ~lat:16;
      [ Noc_spec.Flow.make ~src:11 ~dst:12 ~bw:200.0 ~lat:20 ];
      (* video decode: SDRAM -> front end -> back end -> display *)
      Recipe.pipeline ~stages:[ 8; 12; 13; 15 ] ~bw:600.0 ~taper:1.25 ~lat:20 ();
      [ Noc_spec.Flow.make ~src:13 ~dst:8 ~bw:350.0 ~lat:24 ];
      [ Noc_spec.Flow.make ~src:8 ~dst:15 ~bw:400.0 ~lat:16 ];
      (* camera record: camera -> imaging -> SDRAM / encoder *)
      [ Noc_spec.Flow.make ~src:16 ~dst:17 ~bw:500.0 ~lat:20 ];
      [ Noc_spec.Flow.make ~src:17 ~dst:8 ~bw:400.0 ~lat:24 ];
      [ Noc_spec.Flow.make ~src:17 ~dst:14 ~bw:300.0 ~lat:20 ];
      Recipe.pair ~src:8 ~dst:14 ~bw:450.0 ~back:250.0 ~lat:24 ();
      (* modem subsystem *)
      Recipe.pair ~src:20 ~dst:18 ~bw:250.0 ~back:250.0 ~lat:14 ();
      Recipe.pair ~src:18 ~dst:19 ~bw:500.0 ~back:500.0 ~lat:10 ();
      Recipe.pair ~src:18 ~dst:8 ~bw:200.0 ~back:150.0 ~lat:20 ();
      [ Noc_spec.Flow.make ~src:18 ~dst:0 ~bw:60.0 ~lat:30 ];
      (* audio *)
      Recipe.pair ~src:21 ~dst:22 ~bw:60.0 ~back:60.0 ~lat:30 ();
      [ Noc_spec.Flow.make ~src:8 ~dst:21 ~bw:80.0 ~lat:30 ];
      [ Noc_spec.Flow.make ~src:18 ~dst:21 ~bw:60.0 ~lat:24 ];
      (* crypto and USB against the memory system *)
      Recipe.pair ~src:25 ~dst:8 ~bw:150.0 ~back:150.0 ~lat:30 ();
      Recipe.pair ~src:23 ~dst:8 ~bw:200.0 ~back:200.0 ~lat:30 ();
      (* control plane: cpu0 programs the accelerators and peripherals *)
      Recipe.control_fanout ~master:0
        ~slaves:[ 4; 5; 11; 12; 13; 14; 15; 16; 17; 18; 20; 21; 23; 24; 25 ]
        ~bw:25.0 ~lat:80;
      [ Noc_spec.Flow.make ~src:1 ~dst:24 ~bw:30.0 ~lat:80 ];
    ]

let soc = Soc_spec.make ~name:"D26-mobile" ~cores ~flows ()

(* Functional groups used by the logical partitionings.  Logical
   partitioning clusters cores of the same *function* — the paper's example
   is the shared memories sharing a VI because they serve the same role and
   run at the same voltage/frequency.  Function ignores traffic, so CPUs
   land apart from their caches and DSPs apart from their scratchpads: the
   high-bandwidth flows that then cross islands are precisely why logical
   partitioning pays a power overhead in Fig. 2. *)
let group_procs = [ 0; 1 ]
let group_dsps = [ 4; 5; 18; 21 ]
let group_caches = [ 2; 3 ]
let group_localmem = [ 6; 7; 19 ]
let group_mem = shared_memory_cores
let group_video = [ 12; 13; 14; 15 ]
let group_accel = [ 17; 25 ]
let group_io = [ 16; 20; 22; 23; 24 ]

let vi_of_groups groups ~always_on_of_group =
  let islands = List.length groups in
  let of_core = Array.make (Array.length cores) (-1) in
  List.iteri
    (fun isl members -> List.iter (fun c -> of_core.(c) <- isl) members)
    groups;
  let shutdownable =
    Array.of_list (List.map (fun g -> not (always_on_of_group g)) groups)
  in
  Vi.make ~islands ~of_core ~shutdownable ()

let contains_shared_memory group = List.exists (fun c -> List.mem c group_mem) group

let logical_groups = function
  | 1 ->
    [ group_procs @ group_dsps @ group_caches @ group_localmem @ group_mem
      @ group_video @ group_accel @ group_io ]
  | 2 ->
    (* host subsystem vs. media-and-IO *)
    [
      group_procs @ group_caches @ group_localmem @ group_mem @ group_dsps;
      group_video @ group_accel @ group_io;
    ]
  | 3 ->
    (* shared memories get their own (always-on) island *)
    [
      group_procs @ group_caches @ group_dsps @ group_localmem;
      group_mem;
      group_video @ group_accel @ group_io;
    ]
  | 4 ->
    [
      group_procs @ group_caches;
      group_dsps @ group_localmem;
      group_mem;
      group_video @ group_accel @ group_io;
    ]
  | 5 ->
    [
      group_procs @ group_caches;
      group_dsps @ group_localmem;
      group_mem;
      group_video @ group_accel;
      group_io;
    ]
  | 6 ->
    (* caches split away from the processors: same function, same clock *)
    [
      group_procs;
      group_caches;
      group_dsps @ group_localmem;
      group_mem;
      group_video @ group_accel;
      group_io;
    ]
  | 7 ->
    (* local memories split away from their DSPs too *)
    [
      group_procs;
      group_caches;
      group_dsps;
      group_localmem;
      group_mem;
      group_video @ group_accel;
      group_io;
    ]
  | 26 -> List.init 26 (fun c -> [ c ])
  | n ->
    invalid_arg
      (Printf.sprintf "D26.logical_partition: unsupported island count %d" n)

let logical_partition ~islands =
  let groups = logical_groups islands in
  (* the 1-island reference can never shut down; otherwise the island(s)
     holding shared memories stay on *)
  let always_on_of_group group =
    islands = 1 || contains_shared_memory group
  in
  vi_of_groups groups ~always_on_of_group

let logical_island_counts = [ 1; 2; 3; 4; 5; 6; 7; 26 ]

let scenario name used duty =
  Scenario.make ~name ~used ~cores:(Array.length cores) ~duty

let scenarios =
  [
    scenario "idle_audio" [ 8; 9; 21; 22; 24 ] 0.35;
    scenario "phone_call" [ 8; 9; 18; 19; 20; 21; 22 ] 0.20;
    scenario "video_playback" [ 0; 2; 8; 9; 10; 11; 12; 13; 15; 21; 22 ] 0.15;
    scenario "camera_record" [ 0; 2; 8; 10; 11; 14; 15; 16; 17 ] 0.10;
    scenario "full_load" (List.init 26 (fun c -> c)) 0.10;
  ]
