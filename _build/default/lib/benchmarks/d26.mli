(** The 26-core mobile communication / multimedia SoC case study.

    The paper's benchmark is a proprietary industrial design; this is a
    synthetic reconstruction from its §5 description — "26 cores,
    consisting of several processors, DSPs, caches, DMA controller,
    integrated memory, video decoder engines and a multitude of peripheral
    I/O ports" — with memory-hub-dominated traffic typical of such MPSoCs
    (see DESIGN.md §2 for the substitution argument).

    Core map:
    0–1 ARM CPUs, 2–3 their L2 caches, 4–5 DSPs, 6–7 DSP scratchpads,
    8 SDRAM controller, 9–10 on-chip SRAMs, 11 DMA controller
    (8–11 form the always-on shared-memory subsystem),
    12–13 video decoder front/back end, 14 video encoder,
    15 display controller, 16 camera interface, 17 imaging processor,
    18 modem DSP, 19 modem memory, 20 radio interface,
    21 audio DSP, 22 audio I/O, 23 USB, 24 UART/GPIO, 25 crypto engine. *)

val soc : Noc_spec.Soc_spec.t

val shared_memory_cores : int list
(** Cores 8–11: the shared-memory subsystem the paper keeps always-on. *)

val logical_partition : islands:int -> Noc_spec.Vi.t
(** The designer's functional grouping at a given island count — the
    "logical partitioning" curve of Figs. 2/3.  Supported island counts:
    1–7 and 26.  The island containing the shared memories is marked
    non-shutdownable (paper §5).
    @raise Invalid_argument on an unsupported count. *)

val logical_island_counts : int list
(** [1; 2; 3; 4; 5; 6; 7; 26] — the x-axis of Figs. 2 and 3. *)

val scenarios : Noc_spec.Scenario.t list
(** Usage scenarios (mode, active cores, duty cycle) for the shutdown
    leakage analysis; duties sum below 1, the rest is full-power. *)
