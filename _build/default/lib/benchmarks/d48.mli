(** 48-core LTE base-station (baseband) SoC: the largest benchmark.

    Eight DSP+scratchpad clusters do per-user channel processing around a
    shared DDR/SRAM system; two FFT engines and matched-filter/MAP
    accelerators feed FEC/turbo decoding; four framers drive four SerDes
    line interfaces; dual control CPUs with L2s run the stack, plus
    Ethernet backhaul, crypto and maintenance peripherals.

    Core map: 0–1 control CPUs, 2–3 L2 banks, 4–5 DDR controllers,
    6–7 shared SRAM banks, 8 DMA; 9/10 … 23/24 DSP+scratchpad clusters;
    25–26 FEC engines, 27 turbo decoder, 28–29 MAP accelerators,
    30–31 FFT engines; 32–35 framers, 36–39 SerDes, 40–41 Ethernet MACs;
    42 crypto, 43 timer/sync, 44 GPIO, 45 sensor, 46 boot ROM,
    47 maintenance processor. *)

val soc : Noc_spec.Soc_spec.t

val default_vi : Noc_spec.Vi.t
(** 7 islands: control+memory (always-on), four double-DSP-cluster
    islands, accelerators, line I/O. *)

val scenarios : Noc_spec.Scenario.t list
