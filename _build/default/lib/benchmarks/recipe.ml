module Flow = Noc_spec.Flow

let pair ~src ~dst ~bw ?back ~lat () =
  let forward = Flow.make ~src ~dst ~bw ~lat in
  match back with
  | None -> [ forward ]
  | Some bw_back -> [ forward; Flow.make ~src:dst ~dst:src ~bw:bw_back ~lat ]

let pipeline ~stages ~bw ?(taper = 1.0) ~lat () =
  if taper <= 0.0 then invalid_arg "Recipe.pipeline: non-positive taper";
  let rec chain k = function
    | a :: (b :: _ as rest) ->
      Flow.make ~src:a ~dst:b ~bw:(bw *. Float.pow taper (float_of_int k)) ~lat
      :: chain (k + 1) rest
    | [ _ ] -> []
    | [] -> invalid_arg "Recipe.pipeline: needs at least two stages"
  in
  if List.length stages < 2 then
    invalid_arg "Recipe.pipeline: needs at least two stages";
  chain 0 stages

let hub ~center ~spokes ~to_hub ~from_hub ~lat =
  List.concat_map
    (fun spoke ->
      let up =
        if to_hub > 0.0 then [ Flow.make ~src:spoke ~dst:center ~bw:to_hub ~lat ]
        else []
      in
      let down =
        if from_hub > 0.0 then
          [ Flow.make ~src:center ~dst:spoke ~bw:from_hub ~lat ]
        else []
      in
      up @ down)
    spokes

let control_fanout ~master ~slaves ~bw ~lat =
  List.map (fun slave -> Flow.make ~src:master ~dst:slave ~bw ~lat) slaves

let merge pattern_lists =
  let table : (int * int, Flow.t) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  let add f =
    let key = (f.Flow.src, f.Flow.dst) in
    match Hashtbl.find_opt table key with
    | None ->
      Hashtbl.replace table key f;
      order := key :: !order
    | Some existing ->
      Hashtbl.replace table key
        (Flow.make ~src:f.Flow.src ~dst:f.Flow.dst
           ~bw:(existing.Flow.bandwidth_mbps +. f.Flow.bandwidth_mbps)
           ~lat:(min existing.Flow.max_latency_cycles f.Flow.max_latency_cycles))
  in
  List.iter (List.iter add) pattern_lists;
  List.rev_map (fun key -> Hashtbl.find table key) !order
