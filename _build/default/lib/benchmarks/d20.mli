(** 20-core baseband/telecom SoC: four DSP clusters (DSP + scratchpad)
    around a shared memory system, packet framers towards two line
    interfaces, and a control processor.

    Core map: 0 control CPU, 1 L2, 2 shared DDR, 3–4 shared SRAM banks,
    5/6, 7/8, 9/10, 11/12 DSP+scratchpad clusters, 13 FEC engine,
    14 framer0, 15 framer1, 16 line_if0, 17 line_if1, 18 timer/sync,
    19 maintenance UART. *)

val soc : Noc_spec.Soc_spec.t
val default_vi : Noc_spec.Vi.t
(** 6 islands: control+memory (always-on), the four DSP clusters (pairs),
    and line I/O. *)

val scenarios : Noc_spec.Scenario.t list
