(** 36-core tablet application processor: quad CPU cluster with per-pair
    L2 banks, GPU with two shader clusters, full camera/video/display
    subsystem, modem, audio and a wide peripheral set.  The largest
    benchmark — exercises multilevel partitioning and bigger sweeps.

    Core map: 0–3 CPUs, 4–5 L2 banks, 6 coherence/interconnect agent,
    7 DDR ctrl 0, 8 DDR ctrl 1, 9 SRAM, 10 DMA,
    11 GPU front end, 12–13 shader clusters, 14 GPU cache,
    15 video decoder, 16 video encoder, 17 ISP, 18 camera_if, 19 JPEG,
    20 display ctrl, 21 HDMI out, 22 rotator,
    23 modem DSP, 24 modem mem, 25 RF interface,
    26 audio DSP, 27 audio codec I/O,
    28 crypto, 29 USB, 30 SDIO, 31 NAND ctrl, 32 GPS, 33 sensors hub,
    34 UART/GPIO, 35 power controller. *)

val soc : Noc_spec.Soc_spec.t
val default_vi : Noc_spec.Vi.t
(** 7 islands: CPU, memory system (always-on), GPU, media (video/camera),
    display, modem+GPS, audio+peripherals. *)

val scenarios : Noc_spec.Scenario.t list
