module Core_spec = Noc_spec.Core_spec
module Soc_spec = Noc_spec.Soc_spec
module Vi = Noc_spec.Vi
module Scenario = Noc_spec.Scenario
module Flow = Noc_spec.Flow

(* Block areas are the full placed macro footprints (logic plus private
   L1/L0 memories and local routing overhead) at 65 nm. *)
let core id name kind area freq dyn =
  Core_spec.make ~id ~name ~kind ~area_mm2:(2.5 *. area) ~freq_mhz:freq
    ~dynamic_mw:dyn ()

let cores =
  [|
    core 0 "host_cpu" Core_spec.Processor 2.0 500.0 110.0;
    core 1 "l2" Core_spec.Cache 1.6 500.0 40.0;
    core 2 "sdram_ctrl" Core_spec.Memory 1.4 400.0 55.0;
    core 3 "sram" Core_spec.Memory 0.9 400.0 18.0;
    core 4 "ts_demux" Core_spec.Accelerator 0.8 300.0 35.0;
    core 5 "audio_dec" Core_spec.Dsp 0.9 250.0 30.0;
    core 6 "video_dec" Core_spec.Accelerator 1.6 350.0 85.0;
    core 7 "scaler" Core_spec.Accelerator 1.1 300.0 55.0;
    core 8 "display_out" Core_spec.Io 0.8 250.0 35.0;
    core 9 "disk_if" Core_spec.Io 0.7 250.0 25.0;
    core 10 "eth_mac" Core_spec.Io 0.6 250.0 22.0;
    core 11 "uart_panel" Core_spec.Peripheral 0.3 100.0 6.0;
  |]

let flows =
  Recipe.merge
    [
      Recipe.pair ~src:0 ~dst:1 ~bw:1100.0 ~back:800.0 ~lat:10 ();
      Recipe.pair ~src:1 ~dst:2 ~bw:550.0 ~back:700.0 ~lat:12 ();
      Recipe.pair ~src:0 ~dst:3 ~bw:200.0 ~back:250.0 ~lat:14 ();
      (* stream path: inputs -> demux -> decoders -> memory *)
      [ Flow.make ~src:9 ~dst:4 ~bw:180.0 ~lat:24 ];
      [ Flow.make ~src:10 ~dst:4 ~bw:120.0 ~lat:24 ];
      [ Flow.make ~src:4 ~dst:6 ~bw:220.0 ~lat:16 ];
      [ Flow.make ~src:4 ~dst:5 ~bw:60.0 ~lat:16 ];
      Recipe.pair ~src:6 ~dst:2 ~bw:600.0 ~back:750.0 ~lat:14 ();
      [ Flow.make ~src:5 ~dst:2 ~bw:90.0 ~lat:24 ];
      (* display path: memory -> scaler -> display *)
      Recipe.pipeline ~stages:[ 2; 7; 8 ] ~bw:700.0 ~taper:1.15 ~lat:16 ();
      [ Flow.make ~src:7 ~dst:2 ~bw:300.0 ~lat:20 ];
      (* disk/network against memory *)
      Recipe.pair ~src:9 ~dst:2 ~bw:250.0 ~back:250.0 ~lat:28 ();
      Recipe.pair ~src:10 ~dst:2 ~bw:200.0 ~back:200.0 ~lat:28 ();
      Recipe.control_fanout ~master:0 ~slaves:[ 4; 5; 6; 7; 8; 9; 10; 11 ]
        ~bw:20.0 ~lat:80;
    ]

let soc = Soc_spec.make ~name:"D12-settop" ~cores ~flows ()

let default_vi =
  Vi.make ~islands:4
    ~of_core:[| 0; 0; 0; 0; 1; 1; 1; 2; 2; 3; 3; 3 |]
    ~shutdownable:[| false; true; true; true |]
    ()

let scenarios =
  [
    Scenario.make ~name:"standby" ~used:[ 0; 2; 3; 11 ]
      ~cores:(Array.length cores) ~duty:0.4;
    Scenario.make ~name:"live_tv"
      ~used:[ 0; 1; 2; 3; 4; 5; 6; 7; 8; 10 ]
      ~cores:(Array.length cores) ~duty:0.3;
    Scenario.make ~name:"recording"
      ~used:[ 0; 1; 2; 3; 4; 9; 10 ]
      ~cores:(Array.length cores) ~duty:0.15;
  ]
