module Soc_spec = Noc_spec.Soc_spec
module Vi = Noc_spec.Vi
module Ugraph = Noc_graph.Ugraph
module Digraph = Noc_graph.Digraph
module Kway = Noc_partition.Kway

type strategy = Min_cut | Agglomerative

(* Min-cut communication-based partitioning: a balanced min-cut of the core
   bandwidth graph keeps heavy flows inside islands while islands keep
   enough cores that quiet ones can clock (and power) down.  Cores that
   must share the always-on island are contracted into a single super-node
   before partitioning.  The agglomerative strategy instead merges the
   heaviest-talking clusters first (one hot mega-island, cold leftovers);
   which one wins depends on the traffic shape, so {!sweep_best} explores
   both — the design-point exploration the paper advocates in §3.2. *)
let rec communication_based ?(seed = 0) ?(max_island_cores = max_int)
    ?(strategy = Min_cut) ~islands ~always_on_cores soc =
  match strategy with
  | Agglomerative ->
    let n = Soc_spec.core_count soc in
    if islands < 1 || islands > n then
      invalid_arg "Partitions.communication_based: bad island count";
    if islands = 1 then Vi.single_island ~cores:n
    else begin
      let pinned = List.sort_uniq compare always_on_cores in
      let constraints =
        {
          Noc_partition.Cluster.max_cluster_size = max_island_cores;
          pinned_together =
            (if List.length pinned > 1 && islands < n then [ pinned ] else []);
        }
      in
      let assignment =
        Noc_partition.Cluster.communication_based ~seed ~constraints ~islands
          (Soc_spec.bandwidth_graph soc)
      in
      let shutdownable = Array.make islands true in
      List.iter (fun core -> shutdownable.(assignment.(core)) <- false) pinned;
      Vi.make ~islands ~of_core:assignment ~shutdownable ()
    end
  | Min_cut -> min_cut_partition ~seed ~max_island_cores ~islands ~always_on_cores soc

and min_cut_partition ~seed ~max_island_cores ~islands ~always_on_cores soc =
  let n = Soc_spec.core_count soc in
  if islands < 1 || islands > n then
    invalid_arg "Partitions.communication_based: bad island count";
  List.iter
    (fun c ->
      if c < 0 || c >= n then
        invalid_arg "Partitions.communication_based: bad always-on core")
    always_on_cores;
  if islands = 1 then Vi.single_island ~cores:n
  else begin
    let pinned = List.sort_uniq compare always_on_cores in
    let contract = List.length pinned > 1 && islands < n in
    let node_of_core = Array.init n (fun c -> c) in
    let m =
      if contract then begin
        (* pinned cores collapse onto the smallest pinned id; remaining
           cores are renumbered densely *)
        let rep = List.hd pinned in
        let next = ref 0 in
        for c = 0 to n - 1 do
          if c = rep || not (List.mem c pinned) then begin
            node_of_core.(c) <- !next;
            incr next
          end
        done;
        List.iter
          (fun c -> node_of_core.(c) <- node_of_core.(rep))
          (List.tl pinned);
        !next
      end
      else n
    in
    let g = Ugraph.create m in
    if contract then
      Ugraph.set_node_weight g node_of_core.(List.hd pinned)
        (float_of_int (List.length pinned));
    Digraph.iter_edges
      (fun u v w ->
        let nu = node_of_core.(u) and nv = node_of_core.(v) in
        if nu <> nv then Ugraph.add_edge g nu nv w)
      (Soc_spec.bandwidth_graph soc);
    let pinned_weight = if contract then List.length pinned else 1 in
    let skew_cap =
      int_of_float (Float.round (2.2 *. float_of_int n /. float_of_int islands))
    in
    let max_block =
      min max_island_cores
        (max (max skew_cap pinned_weight) ((n + islands - 1) / islands))
    in
    let partition =
      Kway.partition ~seed ~balance:0.3 ~parts:islands
        ~max_block_weight:(float_of_int max_block) g
    in
    let of_core =
      Array.init n (fun c -> partition.Kway.assignment.(node_of_core.(c)))
    in
    let shutdownable = Array.make islands true in
    List.iter (fun core -> shutdownable.(of_core.(core)) <- false) pinned;
    (match Vi.make ~islands ~of_core ~shutdownable () with
     | vi -> vi
     | exception Invalid_argument _ ->
       (* an empty island can only arise from a degenerate cut; fall back
          to renumbering occupied islands and splitting the largest *)
       invalid_arg
         "Partitions.communication_based: partitioner produced an empty island")
  end

let sweep ?(seed = 0) ~island_counts ~always_on_cores soc =
  List.map
    (fun k ->
      ( Printf.sprintf "comm/%d" k,
        communication_based ~seed ~islands:k ~always_on_cores soc ))
    island_counts

let strategies = [ Min_cut; Agglomerative ]
