(** 16-core digital-TV processor: two concurrent video pipes (main + PiP),
    motion-compensated picture improvement, OSD blending, dual tuner
    front-ends.

    Core map: 0 host CPU, 1 L2, 2 DDR controller, 3 SRAM,
    4–5 tuner/demod front-ends, 6 main video decoder, 7 PiP decoder,
    8 deinterlacer, 9 picture improvement, 10 OSD engine, 11 blender,
    12 panel output, 13 audio DSP, 14 audio out, 15 service peripheral. *)

val soc : Noc_spec.Soc_spec.t
val default_vi : Noc_spec.Vi.t
(** 5 islands: host+memory (always-on), front-ends, decode, picture path,
    audio+service. *)

val scenarios : Noc_spec.Scenario.t list
