(** 12-core digital set-top-box SoC: transport-stream demux feeding audio
    and video decoders, a scaler/compositor into the display path, with
    disk and network interfaces on the memory system.

    Core map: 0 host CPU, 1 L2, 2 SDRAM controller, 3 SRAM,
    4 TS demux, 5 audio decoder, 6 video decoder, 7 scaler,
    8 display out, 9 disk interface, 10 ethernet MAC, 11 UART/front panel. *)

val soc : Noc_spec.Soc_spec.t
val default_vi : Noc_spec.Vi.t
(** 4 islands: host+memories (always-on), stream decode, display path,
    I/O. *)

val scenarios : Noc_spec.Scenario.t list
