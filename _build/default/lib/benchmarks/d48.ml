module Core_spec = Noc_spec.Core_spec
module Soc_spec = Noc_spec.Soc_spec
module Vi = Noc_spec.Vi
module Scenario = Noc_spec.Scenario
module Flow = Noc_spec.Flow

(* Block areas are the full placed macro footprints (logic plus private
   L1/L0 memories and local routing overhead) at 65 nm. *)
let core id name kind area freq dyn =
  Core_spec.make ~id ~name ~kind ~area_mm2:(2.5 *. area) ~freq_mhz:freq
    ~dynamic_mw:dyn ()

let dsp_pair base index =
  [
    core base
      (Printf.sprintf "dsp%d" index)
      Core_spec.Dsp 1.5 400.0 78.0;
    core (base + 1)
      (Printf.sprintf "dsp%d_mem" index)
      Core_spec.Memory 1.1 400.0 22.0;
  ]

let cores =
  Array.of_list
    ([
       core 0 "ctrl_cpu0" Core_spec.Processor 2.0 500.0 105.0;
       core 1 "ctrl_cpu1" Core_spec.Processor 2.0 500.0 105.0;
       core 2 "l2_bank0" Core_spec.Cache 1.6 500.0 40.0;
       core 3 "l2_bank1" Core_spec.Cache 1.6 500.0 40.0;
       core 4 "ddr0" Core_spec.Memory 1.6 450.0 65.0;
       core 5 "ddr1" Core_spec.Memory 1.6 450.0 65.0;
       core 6 "sram_a" Core_spec.Memory 1.0 450.0 20.0;
       core 7 "sram_b" Core_spec.Memory 1.0 450.0 20.0;
       core 8 "dma" Core_spec.Dma 0.8 400.0 35.0;
     ]
    @ List.concat (List.init 8 (fun i -> dsp_pair (9 + (2 * i)) i))
    @ [
        core 25 "fec0" Core_spec.Accelerator 1.3 350.0 62.0;
        core 26 "fec1" Core_spec.Accelerator 1.3 350.0 62.0;
        core 27 "turbo" Core_spec.Accelerator 1.5 350.0 72.0;
        core 28 "map0" Core_spec.Accelerator 1.0 350.0 48.0;
        core 29 "map1" Core_spec.Accelerator 1.0 350.0 48.0;
        core 30 "fft0" Core_spec.Accelerator 1.2 400.0 58.0;
        core 31 "fft1" Core_spec.Accelerator 1.2 400.0 58.0;
        core 32 "framer0" Core_spec.Accelerator 0.8 300.0 34.0;
        core 33 "framer1" Core_spec.Accelerator 0.8 300.0 34.0;
        core 34 "framer2" Core_spec.Accelerator 0.8 300.0 34.0;
        core 35 "framer3" Core_spec.Accelerator 0.8 300.0 34.0;
        core 36 "serdes0" Core_spec.Io 0.6 300.0 26.0;
        core 37 "serdes1" Core_spec.Io 0.6 300.0 26.0;
        core 38 "serdes2" Core_spec.Io 0.6 300.0 26.0;
        core 39 "serdes3" Core_spec.Io 0.6 300.0 26.0;
        core 40 "eth0" Core_spec.Io 0.6 250.0 24.0;
        core 41 "eth1" Core_spec.Io 0.6 250.0 24.0;
        core 42 "crypto" Core_spec.Accelerator 0.8 300.0 40.0;
        core 43 "timer_sync" Core_spec.Peripheral 0.3 100.0 7.0;
        core 44 "gpio" Core_spec.Peripheral 0.3 100.0 6.0;
        core 45 "sensor" Core_spec.Peripheral 0.3 100.0 6.0;
        core 46 "boot_rom" Core_spec.Memory 0.5 200.0 8.0;
        core 47 "maint_cpu" Core_spec.Processor 0.9 250.0 35.0;
      ])

let dsp_of i = 9 + (2 * i)
let mem_of i = dsp_of i + 1
let fft_of i = 30 + (i mod 2)
let fec_of i = 25 + (i mod 2)
let sram_of i = 6 + (i mod 2)

(* Uplink per cluster: FFT -> DSP (channel estimation) -> MAP -> FEC;
   downlink: DSP -> FFT -> framer -> SerDes; every cluster leans on its
   scratchpad and a shared SRAM bank. *)
let cluster_flows i =
  Recipe.merge
    [
      Recipe.pair ~src:(dsp_of i) ~dst:(mem_of i) ~bw:700.0 ~back:700.0
        ~lat:10 ();
      Recipe.pair ~src:(dsp_of i) ~dst:(sram_of i) ~bw:180.0 ~back:180.0
        ~lat:18 ();
      [ Flow.make ~src:(fft_of i) ~dst:(dsp_of i) ~bw:260.0 ~lat:16 ];
      [ Flow.make ~src:(dsp_of i) ~dst:(fft_of i) ~bw:220.0 ~lat:16 ];
      [ Flow.make ~src:(dsp_of i) ~dst:(28 + (i mod 2)) ~bw:150.0 ~lat:18 ];
      [ Flow.make ~src:(dsp_of i) ~dst:(fec_of i) ~bw:130.0 ~lat:20 ];
    ]

let flows =
  Recipe.merge
    ([
       (* control subsystem *)
       Recipe.pair ~src:0 ~dst:2 ~bw:1000.0 ~back:750.0 ~lat:10 ();
       Recipe.pair ~src:1 ~dst:3 ~bw:1000.0 ~back:750.0 ~lat:10 ();
       Recipe.pair ~src:2 ~dst:4 ~bw:500.0 ~back:650.0 ~lat:12 ();
       Recipe.pair ~src:3 ~dst:5 ~bw:500.0 ~back:650.0 ~lat:12 ();
       Recipe.pair ~src:47 ~dst:4 ~bw:90.0 ~back:120.0 ~lat:30 ();
       [ Flow.make ~src:46 ~dst:47 ~bw:40.0 ~lat:40 ];
       (* DMA stages blocks between DDR and the SRAM banks *)
       Recipe.hub ~center:8 ~spokes:[ 4; 5; 6; 7 ] ~to_hub:320.0
         ~from_hub:320.0 ~lat:20;
       (* decoded uplink data to DDR, then backhaul out the Ethernet MACs *)
       Recipe.pair ~src:25 ~dst:4 ~bw:300.0 ~back:150.0 ~lat:20 ();
       Recipe.pair ~src:26 ~dst:5 ~bw:300.0 ~back:150.0 ~lat:20 ();
       Recipe.pair ~src:27 ~dst:4 ~bw:260.0 ~back:130.0 ~lat:20 ();
       [ Flow.make ~src:28 ~dst:27 ~bw:200.0 ~lat:16 ];
       [ Flow.make ~src:29 ~dst:27 ~bw:200.0 ~lat:16 ];
       Recipe.pair ~src:40 ~dst:4 ~bw:350.0 ~back:350.0 ~lat:24 ();
       Recipe.pair ~src:41 ~dst:5 ~bw:350.0 ~back:350.0 ~lat:24 ();
       (* downlink: FFT outputs framed onto the four SerDes lanes *)
       [ Flow.make ~src:30 ~dst:32 ~bw:240.0 ~lat:14 ];
       [ Flow.make ~src:30 ~dst:33 ~bw:240.0 ~lat:14 ];
       [ Flow.make ~src:31 ~dst:34 ~bw:240.0 ~lat:14 ];
       [ Flow.make ~src:31 ~dst:35 ~bw:240.0 ~lat:14 ];
       Recipe.pair ~src:32 ~dst:36 ~bw:260.0 ~back:240.0 ~lat:12 ();
       Recipe.pair ~src:33 ~dst:37 ~bw:260.0 ~back:240.0 ~lat:12 ();
       Recipe.pair ~src:34 ~dst:38 ~bw:260.0 ~back:240.0 ~lat:12 ();
       Recipe.pair ~src:35 ~dst:39 ~bw:260.0 ~back:240.0 ~lat:12 ();
       (* uplink enters through the framers towards the FFTs *)
       [ Flow.make ~src:32 ~dst:30 ~bw:220.0 ~lat:14 ];
       [ Flow.make ~src:33 ~dst:30 ~bw:220.0 ~lat:14 ];
       [ Flow.make ~src:34 ~dst:31 ~bw:220.0 ~lat:14 ];
       [ Flow.make ~src:35 ~dst:31 ~bw:220.0 ~lat:14 ];
       (* crypto protects the backhaul *)
       Recipe.pair ~src:42 ~dst:4 ~bw:140.0 ~back:140.0 ~lat:28 ();
       (* control plane *)
       Recipe.control_fanout ~master:0
         ~slaves:
           [ 8; 9; 11; 13; 15; 17; 19; 21; 23; 25; 26; 27; 28; 29; 30; 31;
             32; 33; 34; 35; 40; 41; 42; 43; 44; 45 ]
         ~bw:15.0 ~lat:90;
       [ Flow.make ~src:43 ~dst:0 ~bw:12.0 ~lat:60 ];
       [ Flow.make ~src:45 ~dst:47 ~bw:8.0 ~lat:80 ];
     ]
    @ List.init 8 cluster_flows)

let soc = Soc_spec.make ~name:"D48-basestation" ~cores ~flows ()

let default_vi =
  let of_core = Array.make 48 (-1) in
  let assign island members = List.iter (fun c -> of_core.(c) <- island) members in
  (* 0: control + memory (always-on) *)
  assign 0 [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 43; 46; 47 ];
  (* 1-4: double DSP-cluster islands *)
  List.iteri
    (fun i island_offset ->
      ignore island_offset;
      let a = 2 * i and b = (2 * i) + 1 in
      assign (1 + i) [ dsp_of a; mem_of a; dsp_of b; mem_of b ])
    [ 0; 1; 2; 3 ];
  (* 5: accelerators *)
  assign 5 [ 25; 26; 27; 28; 29; 30; 31; 42 ];
  (* 6: line I/O and low-speed peripherals *)
  assign 6 [ 32; 33; 34; 35; 36; 37; 38; 39; 40; 41; 44; 45 ];
  Vi.make ~islands:7 ~of_core
    ~shutdownable:[| false; true; true; true; true; true; true |]
    ()

let scenarios =
  let all_cores = Array.length cores in
  let control = [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 43; 46; 47 ] in
  let cluster i = [ dsp_of i; mem_of i ] in
  let accel = [ 25; 26; 27; 28; 29; 30; 31 ] in
  let io = [ 32; 33; 34; 35; 36; 37; 38; 39; 40; 41 ] in
  [
    Scenario.make ~name:"night_low"
      ~used:(control @ cluster 0 @ cluster 1 @ accel @ io)
      ~cores:all_cores ~duty:0.35;
    Scenario.make ~name:"daytime"
      ~used:
        (control @ cluster 0 @ cluster 1 @ cluster 2 @ cluster 3 @ cluster 4
        @ cluster 5 @ accel @ io @ [ 42 ])
      ~cores:all_cores ~duty:0.40;
    Scenario.make ~name:"peak"
      ~used:(List.init all_cores (fun c -> c))
      ~cores:all_cores ~duty:0.15;
    Scenario.make ~name:"maintenance"
      ~used:(control @ [ 44; 45 ])
      ~cores:all_cores ~duty:0.05;
  ]
