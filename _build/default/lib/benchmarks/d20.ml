module Core_spec = Noc_spec.Core_spec
module Soc_spec = Noc_spec.Soc_spec
module Vi = Noc_spec.Vi
module Scenario = Noc_spec.Scenario
module Flow = Noc_spec.Flow

(* Block areas are the full placed macro footprints (logic plus private
   L1/L0 memories and local routing overhead) at 65 nm. *)
let core id name kind area freq dyn =
  Core_spec.make ~id ~name ~kind ~area_mm2:(2.5 *. area) ~freq_mhz:freq
    ~dynamic_mw:dyn ()

let cores =
  [|
    core 0 "ctrl_cpu" Core_spec.Processor 1.9 450.0 100.0;
    core 1 "l2" Core_spec.Cache 1.5 450.0 38.0;
    core 2 "ddr_ctrl" Core_spec.Memory 1.5 400.0 58.0;
    core 3 "sram_a" Core_spec.Memory 1.0 400.0 20.0;
    core 4 "sram_b" Core_spec.Memory 1.0 400.0 20.0;
    core 5 "dsp0" Core_spec.Dsp 1.5 400.0 78.0;
    core 6 "dsp0_mem" Core_spec.Memory 1.1 400.0 22.0;
    core 7 "dsp1" Core_spec.Dsp 1.5 400.0 78.0;
    core 8 "dsp1_mem" Core_spec.Memory 1.1 400.0 22.0;
    core 9 "dsp2" Core_spec.Dsp 1.5 400.0 78.0;
    core 10 "dsp2_mem" Core_spec.Memory 1.1 400.0 22.0;
    core 11 "dsp3" Core_spec.Dsp 1.5 400.0 78.0;
    core 12 "dsp3_mem" Core_spec.Memory 1.1 400.0 22.0;
    core 13 "fec" Core_spec.Accelerator 1.2 350.0 60.0;
    core 14 "framer0" Core_spec.Accelerator 0.8 300.0 35.0;
    core 15 "framer1" Core_spec.Accelerator 0.8 300.0 35.0;
    core 16 "line_if0" Core_spec.Io 0.6 250.0 24.0;
    core 17 "line_if1" Core_spec.Io 0.6 250.0 24.0;
    core 18 "timer_sync" Core_spec.Peripheral 0.3 100.0 7.0;
    core 19 "maint_uart" Core_spec.Peripheral 0.3 100.0 6.0;
  |]

let dsp_cluster ~dsp ~mem ~sram =
  Recipe.merge
    [
      Recipe.pair ~src:dsp ~dst:mem ~bw:750.0 ~back:750.0 ~lat:10 ();
      Recipe.pair ~src:dsp ~dst:sram ~bw:220.0 ~back:220.0 ~lat:16 ();
      Recipe.pair ~src:dsp ~dst:2 ~bw:120.0 ~back:160.0 ~lat:22 ();
      [ Flow.make ~src:dsp ~dst:13 ~bw:180.0 ~lat:18 ];
    ]

let flows =
  Recipe.merge
    [
      Recipe.pair ~src:0 ~dst:1 ~bw:1000.0 ~back:750.0 ~lat:10 ();
      Recipe.pair ~src:1 ~dst:2 ~bw:500.0 ~back:650.0 ~lat:12 ();
      dsp_cluster ~dsp:5 ~mem:6 ~sram:3;
      dsp_cluster ~dsp:7 ~mem:8 ~sram:3;
      dsp_cluster ~dsp:9 ~mem:10 ~sram:4;
      dsp_cluster ~dsp:11 ~mem:12 ~sram:4;
      (* FEC output feeds the framers, framers feed the line interfaces *)
      [ Flow.make ~src:13 ~dst:14 ~bw:300.0 ~lat:16 ];
      [ Flow.make ~src:13 ~dst:15 ~bw:300.0 ~lat:16 ];
      Recipe.pair ~src:14 ~dst:16 ~bw:280.0 ~back:260.0 ~lat:14 ();
      Recipe.pair ~src:15 ~dst:17 ~bw:280.0 ~back:260.0 ~lat:14 ();
      (* receive direction back through FEC to the DSP scratchpads *)
      [ Flow.make ~src:13 ~dst:6 ~bw:150.0 ~lat:18 ];
      [ Flow.make ~src:13 ~dst:8 ~bw:150.0 ~lat:18 ];
      [ Flow.make ~src:13 ~dst:10 ~bw:150.0 ~lat:18 ];
      [ Flow.make ~src:13 ~dst:12 ~bw:150.0 ~lat:18 ];
      [ Flow.make ~src:2 ~dst:13 ~bw:200.0 ~lat:20 ];
      Recipe.control_fanout ~master:0
        ~slaves:[ 5; 7; 9; 11; 13; 14; 15; 16; 17; 18; 19 ]
        ~bw:18.0 ~lat:80;
      [ Flow.make ~src:18 ~dst:0 ~bw:15.0 ~lat:60 ];
    ]

let soc = Soc_spec.make ~name:"D20-telecom" ~cores ~flows ()

let default_vi =
  Vi.make ~islands:6
    ~of_core:[| 0; 0; 0; 0; 0; 1; 1; 2; 2; 3; 3; 4; 4; 5; 5; 5; 5; 5; 0; 0 |]
    ~shutdownable:[| false; true; true; true; true; true |]
    ()

let scenarios =
  [
    Scenario.make ~name:"low_traffic"
      ~used:[ 0; 1; 2; 3; 5; 6; 13; 14; 16; 18 ]
      ~cores:(Array.length cores) ~duty:0.40;
    Scenario.make ~name:"half_load"
      ~used:[ 0; 1; 2; 3; 4; 5; 6; 7; 8; 13; 14; 15; 16; 17; 18 ]
      ~cores:(Array.length cores) ~duty:0.30;
    Scenario.make ~name:"maintenance" ~used:[ 0; 1; 2; 18; 19 ]
      ~cores:(Array.length cores) ~duty:0.10;
  ]
