lib/benchmarks/d12.mli: Noc_spec
