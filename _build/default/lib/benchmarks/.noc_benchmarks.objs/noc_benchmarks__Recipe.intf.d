lib/benchmarks/recipe.mli: Noc_spec
