lib/benchmarks/synth_gen.mli: Noc_spec
