lib/benchmarks/d16.ml: Array Noc_spec Recipe
