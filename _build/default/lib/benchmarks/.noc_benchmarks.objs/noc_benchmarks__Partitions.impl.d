lib/benchmarks/partitions.ml: Array Float List Noc_graph Noc_partition Noc_spec Printf
