lib/benchmarks/synth_gen.ml: Array Float Hashtbl List Noc_spec Printf Random Recipe
