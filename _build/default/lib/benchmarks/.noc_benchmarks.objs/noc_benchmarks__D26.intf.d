lib/benchmarks/d26.mli: Noc_spec
