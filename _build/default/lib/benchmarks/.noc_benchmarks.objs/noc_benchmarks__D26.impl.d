lib/benchmarks/d26.ml: Array List Noc_spec Printf Recipe
