lib/benchmarks/d20.ml: Array Noc_spec Recipe
