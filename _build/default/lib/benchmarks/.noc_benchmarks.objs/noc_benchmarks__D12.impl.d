lib/benchmarks/d12.ml: Array Noc_spec Recipe
