lib/benchmarks/d16.mli: Noc_spec
