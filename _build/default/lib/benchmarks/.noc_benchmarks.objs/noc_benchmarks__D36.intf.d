lib/benchmarks/d36.mli: Noc_spec
