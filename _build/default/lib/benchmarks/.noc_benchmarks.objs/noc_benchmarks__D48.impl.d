lib/benchmarks/d48.ml: Array List Noc_spec Printf Recipe
