lib/benchmarks/bench_case.ml: D12 D16 D20 D26 D36 D48 List Noc_spec String
