lib/benchmarks/d48.mli: Noc_spec
