lib/benchmarks/partitions.mli: Noc_spec
