lib/benchmarks/recipe.ml: Float Hashtbl List Noc_spec
