lib/benchmarks/d20.mli: Noc_spec
