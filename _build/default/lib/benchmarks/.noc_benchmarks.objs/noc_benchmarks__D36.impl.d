lib/benchmarks/d36.ml: Array Noc_spec Recipe
