lib/benchmarks/bench_case.mli: Noc_spec
