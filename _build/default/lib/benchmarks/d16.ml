module Core_spec = Noc_spec.Core_spec
module Soc_spec = Noc_spec.Soc_spec
module Vi = Noc_spec.Vi
module Scenario = Noc_spec.Scenario
module Flow = Noc_spec.Flow

(* Block areas are the full placed macro footprints (logic plus private
   L1/L0 memories and local routing overhead) at 65 nm. *)
let core id name kind area freq dyn =
  Core_spec.make ~id ~name ~kind ~area_mm2:(2.5 *. area) ~freq_mhz:freq
    ~dynamic_mw:dyn ()

let cores =
  [|
    core 0 "host_cpu" Core_spec.Processor 2.1 500.0 115.0;
    core 1 "l2" Core_spec.Cache 1.7 500.0 42.0;
    core 2 "ddr_ctrl" Core_spec.Memory 1.6 450.0 65.0;
    core 3 "sram" Core_spec.Memory 1.0 450.0 20.0;
    core 4 "tuner0" Core_spec.Io 0.7 200.0 28.0;
    core 5 "tuner1" Core_spec.Io 0.7 200.0 28.0;
    core 6 "vdec_main" Core_spec.Accelerator 1.8 350.0 90.0;
    core 7 "vdec_pip" Core_spec.Accelerator 1.2 300.0 55.0;
    core 8 "deinterlacer" Core_spec.Accelerator 1.3 350.0 60.0;
    core 9 "pict_improve" Core_spec.Accelerator 1.5 350.0 75.0;
    core 10 "osd" Core_spec.Accelerator 0.8 250.0 30.0;
    core 11 "blender" Core_spec.Accelerator 0.9 300.0 40.0;
    core 12 "panel_out" Core_spec.Io 0.9 300.0 45.0;
    core 13 "audio_dsp" Core_spec.Dsp 0.9 250.0 32.0;
    core 14 "audio_out" Core_spec.Io 0.4 150.0 10.0;
    core 15 "service" Core_spec.Peripheral 0.4 100.0 8.0;
  |]

let flows =
  Recipe.merge
    [
      Recipe.pair ~src:0 ~dst:1 ~bw:1200.0 ~back:900.0 ~lat:10 ();
      Recipe.pair ~src:1 ~dst:2 ~bw:600.0 ~back:800.0 ~lat:12 ();
      Recipe.pair ~src:0 ~dst:3 ~bw:180.0 ~back:220.0 ~lat:14 ();
      (* two transport streams into the decoders *)
      [ Flow.make ~src:4 ~dst:6 ~bw:200.0 ~lat:18 ];
      [ Flow.make ~src:5 ~dst:7 ~bw:150.0 ~lat:18 ];
      [ Flow.make ~src:4 ~dst:13 ~bw:40.0 ~lat:24 ];
      (* decoders work against DDR *)
      Recipe.pair ~src:6 ~dst:2 ~bw:700.0 ~back:850.0 ~lat:14 ();
      Recipe.pair ~src:7 ~dst:2 ~bw:350.0 ~back:420.0 ~lat:16 ();
      (* picture path: DDR -> deinterlace -> improve -> blend -> panel *)
      Recipe.pipeline ~stages:[ 2; 8; 9; 11; 12 ] ~bw:850.0 ~taper:1.05
        ~lat:16 ();
      [ Flow.make ~src:8 ~dst:2 ~bw:400.0 ~lat:20 ];
      [ Flow.make ~src:9 ~dst:2 ~bw:350.0 ~lat:20 ];
      [ Flow.make ~src:10 ~dst:11 ~bw:250.0 ~lat:18 ];
      [ Flow.make ~src:2 ~dst:10 ~bw:180.0 ~lat:22 ];
      [ Flow.make ~src:7 ~dst:11 ~bw:200.0 ~lat:18 ];
      (* audio *)
      Recipe.pair ~src:13 ~dst:14 ~bw:60.0 ~back:30.0 ~lat:30 ();
      [ Flow.make ~src:2 ~dst:13 ~bw:90.0 ~lat:28 ];
      Recipe.control_fanout ~master:0
        ~slaves:[ 4; 5; 6; 7; 8; 9; 10; 11; 12; 13; 15 ]
        ~bw:22.0 ~lat:80;
    ]

let soc = Soc_spec.make ~name:"D16-tv" ~cores ~flows ()

let default_vi =
  Vi.make ~islands:5
    ~of_core:[| 0; 0; 0; 0; 1; 1; 2; 2; 3; 3; 3; 3; 3; 4; 4; 4 |]
    ~shutdownable:[| false; true; true; true; true |]
    ()

let scenarios =
  [
    Scenario.make ~name:"standby" ~used:[ 0; 2; 3; 15 ]
      ~cores:(Array.length cores) ~duty:0.45;
    Scenario.make ~name:"single_channel"
      ~used:[ 0; 1; 2; 3; 4; 6; 8; 9; 10; 11; 12; 13; 14 ]
      ~cores:(Array.length cores) ~duty:0.35;
    Scenario.make ~name:"radio_mode"
      ~used:[ 0; 2; 3; 4; 13; 14; 15 ]
      ~cores:(Array.length cores) ~duty:0.10;
  ]
