module Core_spec = Noc_spec.Core_spec
module Soc_spec = Noc_spec.Soc_spec
module Vi = Noc_spec.Vi
module Flow = Noc_spec.Flow

type profile = {
  cores : int;
  hub_fraction : float;
  pipeline_count : int;
  max_bw_mbps : float;
  tight_latency : int;
}

let default_profile =
  {
    cores = 18;
    hub_fraction = 0.2;
    pipeline_count = 2;
    max_bw_mbps = 1200.0;
    tight_latency = 10;
  }

let validate p =
  if p.cores < 4 then invalid_arg "Synth_gen: cores < 4";
  if p.hub_fraction <= 0.0 || p.hub_fraction >= 1.0 then
    invalid_arg "Synth_gen: hub_fraction out of (0,1)";
  if p.pipeline_count < 0 then invalid_arg "Synth_gen: negative pipeline_count";
  if p.max_bw_mbps <= 0.0 then invalid_arg "Synth_gen: non-positive max_bw";
  if p.tight_latency < 10 then
    invalid_arg "Synth_gen: tight_latency < 10 (a crossing costs 9 cycles)"

let pick_kind state =
  match Random.State.int state 6 with
  | 0 -> Core_spec.Processor
  | 1 -> Core_spec.Dsp
  | 2 -> Core_spec.Accelerator
  | 3 -> Core_spec.Io
  | 4 -> Core_spec.Peripheral
  | _ -> Core_spec.Accelerator

let generate ~seed p =
  validate p;
  let state = Random.State.make [| seed; p.cores; 0xBEEF |] in
  let hub_count =
    max 1 (int_of_float (Float.round (p.hub_fraction *. float_of_int p.cores)))
  in
  (* hubs first (memories), then compute/io cores *)
  let cores =
    Array.init p.cores (fun id ->
        let is_hub = id < hub_count in
        let kind = if is_hub then Core_spec.Memory else pick_kind state in
        let area = 0.4 +. Random.State.float state 1.8 in
        let freq = 100.0 +. Random.State.float state 500.0 in
        let dyn = 8.0 +. Random.State.float state 110.0 in
        Core_spec.make ~id
          ~name:(Printf.sprintf "%s%d" (if is_hub then "mem" else "core") id)
          ~kind ~area_mm2:area ~freq_mhz:freq ~dynamic_mw:dyn ())
  in
  let loose_latency = p.tight_latency * 8 in
  let rand_lat () =
    p.tight_latency + Random.State.int state (loose_latency - p.tight_latency + 1)
  in
  let rand_bw scale = Float.max 10.0 (Random.State.float state scale) in
  let patterns = ref [] in
  (* every non-hub core talks to a hub (request/response) *)
  for id = hub_count to p.cores - 1 do
    let hub = Random.State.int state hub_count in
    patterns :=
      Recipe.pair ~src:id ~dst:hub
        ~bw:(rand_bw (p.max_bw_mbps /. 2.0))
        ~back:(rand_bw p.max_bw_mbps) ~lat:(rand_lat ()) ()
      :: !patterns
  done;
  (* streaming pipelines over random distinct non-hub cores *)
  for _ = 1 to p.pipeline_count do
    let stage_count = 3 + Random.State.int state 3 in
    let available = p.cores - hub_count in
    if available >= stage_count then begin
      let chosen = Hashtbl.create stage_count in
      let rec draw k acc =
        if k = 0 then List.rev acc
        else begin
          let c = hub_count + Random.State.int state available in
          if Hashtbl.mem chosen c then draw k acc
          else begin
            Hashtbl.replace chosen c ();
            draw (k - 1) (c :: acc)
          end
        end
      in
      let stages = draw stage_count [] in
      patterns :=
        Recipe.pipeline ~stages
          ~bw:(rand_bw (p.max_bw_mbps /. 2.0))
          ~lat:(rand_lat ()) ()
        :: !patterns
    end
  done;
  (* a control master fans out to a few slaves *)
  let master = hub_count in
  let slaves =
    List.filter
      (fun c -> c <> master && Random.State.bool state)
      (List.init (p.cores - hub_count) (fun i -> hub_count + i))
  in
  if slaves <> [] then
    patterns :=
      Recipe.control_fanout ~master ~slaves ~bw:15.0 ~lat:loose_latency
      :: !patterns;
  let flows = Recipe.merge !patterns in
  Soc_spec.make ~name:(Printf.sprintf "rand-%d-%d" p.cores seed) ~cores ~flows
    ()

let random_vi ~seed ~islands soc =
  let n = Soc_spec.core_count soc in
  if islands < 1 || islands > n then
    invalid_arg "Synth_gen.random_vi: bad island count";
  let state = Random.State.make [| seed; islands; 0xD1CE |] in
  let of_core = Array.make n (-1) in
  (* guarantee non-empty islands, then distribute the rest *)
  let order = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Random.State.int state (i + 1) in
    let t = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- t
  done;
  Array.iteri
    (fun rank core ->
      of_core.(core) <-
        (if rank < islands then rank else Random.State.int state islands))
    order;
  let shutdownable = Array.init islands (fun isl -> isl <> 0) in
  Vi.make ~islands ~of_core ~shutdownable ()
