(** Helpers for writing benchmark traffic specifications.

    The public SoC benchmarks of the NoC synthesis literature are built
    from a handful of recurring patterns: request/response pairs against a
    memory hub, streaming pipelines through accelerators, and low-rate
    control fan-out.  These combinators keep each benchmark definition
    declarative and make the traffic statistics easy to audit. *)

val pair :
  src:int -> dst:int -> bw:float -> ?back:float -> lat:int -> unit ->
  Noc_spec.Flow.t list
(** Request flow [src → dst] at [bw]; when [back] is given, a response flow
    [dst → src] at that bandwidth with the same latency constraint. *)

val pipeline :
  stages:int list -> bw:float -> ?taper:float -> lat:int -> unit ->
  Noc_spec.Flow.t list
(** Streaming chain through [stages] (≥ 2 cores): consecutive stages are
    connected at [bw] scaled by [taper]^k for the k-th hop (default taper
    1.0). *)

val hub :
  center:int -> spokes:int list -> to_hub:float -> from_hub:float -> lat:int ->
  Noc_spec.Flow.t list
(** Every spoke sends [to_hub] to the center and receives [from_hub] from it
    (a DMA or memory-controller pattern).  Zero bandwidths skip the
    direction. *)

val control_fanout :
  master:int -> slaves:int list -> bw:float -> lat:int -> Noc_spec.Flow.t list
(** Low-rate programming traffic from one master to many peripherals. *)

val merge : Noc_spec.Flow.t list list -> Noc_spec.Flow.t list
(** Concatenate pattern outputs, {e summing} the bandwidth and tightening
    the latency of duplicate (src, dst) pairs so the result satisfies
    {!Noc_spec.Soc_spec.make}'s no-duplicate rule. *)
