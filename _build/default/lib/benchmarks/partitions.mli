(** Communication-based VI assignments (the second curve of Figs. 2/3) and
    helpers shared by the benchmark definitions. *)

type strategy =
  | Min_cut
      (** balanced k-way min-cut of the bandwidth graph: heavy flows stay
          internal {e and} every island keeps enough cores to downclock *)
  | Agglomerative
      (** heaviest-talking clusters merge first: one hot mega-island plus
          progressively colder leftovers *)

val communication_based :
  ?seed:int ->
  ?max_island_cores:int ->
  ?strategy:strategy ->
  islands:int ->
  always_on_cores:int list ->
  Noc_spec.Soc_spec.t ->
  Noc_spec.Vi.t
(** Cluster cores into [islands] VIs by traffic affinity (default strategy
    {!Min_cut}); [always_on_cores] are pre-pinned into one cluster and
    every island containing one of them is marked non-shutdownable.  The
    1-island case degenerates to {!Noc_spec.Vi.single_island}. *)

val strategies : strategy list
(** Both strategies, for callers that explore and keep the better design
    (the paper's §3.2 methodology). *)

val sweep :
  ?seed:int ->
  island_counts:int list ->
  always_on_cores:int list ->
  Noc_spec.Soc_spec.t ->
  (string * Noc_spec.Vi.t) list
(** Labeled communication-based assignments ("comm/<k>") for each count. *)
