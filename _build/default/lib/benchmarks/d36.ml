module Core_spec = Noc_spec.Core_spec
module Soc_spec = Noc_spec.Soc_spec
module Vi = Noc_spec.Vi
module Scenario = Noc_spec.Scenario
module Flow = Noc_spec.Flow

(* Block areas are the full placed macro footprints (logic plus private
   L1/L0 memories and local routing overhead) at 65 nm. *)
let core id name kind area freq dyn =
  Core_spec.make ~id ~name ~kind ~area_mm2:(2.5 *. area) ~freq_mhz:freq
    ~dynamic_mw:dyn ()

let cores =
  [|
    core 0 "cpu0" Core_spec.Processor 2.4 600.0 130.0;
    core 1 "cpu1" Core_spec.Processor 2.4 600.0 130.0;
    core 2 "cpu2" Core_spec.Processor 2.4 600.0 130.0;
    core 3 "cpu3" Core_spec.Processor 2.4 600.0 130.0;
    core 4 "l2_bank0" Core_spec.Cache 2.0 600.0 50.0;
    core 5 "l2_bank1" Core_spec.Cache 2.0 600.0 50.0;
    core 6 "coherence" Core_spec.Dma 0.9 500.0 45.0;
    core 7 "ddr0" Core_spec.Memory 1.6 450.0 70.0;
    core 8 "ddr1" Core_spec.Memory 1.6 450.0 70.0;
    core 9 "sram" Core_spec.Memory 1.0 450.0 20.0;
    core 10 "dma" Core_spec.Dma 0.8 400.0 35.0;
    core 11 "gpu_fe" Core_spec.Accelerator 1.2 400.0 65.0;
    core 12 "shader0" Core_spec.Accelerator 2.2 400.0 120.0;
    core 13 "shader1" Core_spec.Accelerator 2.2 400.0 120.0;
    core 14 "gpu_cache" Core_spec.Cache 1.4 400.0 38.0;
    core 15 "vdec" Core_spec.Accelerator 1.6 350.0 85.0;
    core 16 "venc" Core_spec.Accelerator 1.6 350.0 85.0;
    core 17 "isp" Core_spec.Accelerator 1.5 350.0 75.0;
    core 18 "camera_if" Core_spec.Io 0.7 300.0 30.0;
    core 19 "jpeg" Core_spec.Accelerator 0.9 300.0 40.0;
    core 20 "disp_ctrl" Core_spec.Accelerator 1.1 350.0 50.0;
    core 21 "hdmi" Core_spec.Io 0.7 300.0 30.0;
    core 22 "rotator" Core_spec.Accelerator 0.8 300.0 35.0;
    core 23 "modem_dsp" Core_spec.Dsp 1.8 400.0 85.0;
    core 24 "modem_mem" Core_spec.Memory 1.0 400.0 20.0;
    core 25 "rf_if" Core_spec.Io 0.6 250.0 24.0;
    core 26 "audio_dsp" Core_spec.Dsp 0.9 250.0 35.0;
    core 27 "audio_codec" Core_spec.Io 0.4 150.0 12.0;
    core 28 "crypto" Core_spec.Accelerator 0.8 300.0 40.0;
    core 29 "usb" Core_spec.Io 0.5 250.0 20.0;
    core 30 "sdio" Core_spec.Io 0.5 250.0 18.0;
    core 31 "nand" Core_spec.Memory 0.8 250.0 25.0;
    core 32 "gps" Core_spec.Io 0.7 250.0 28.0;
    core 33 "sensors" Core_spec.Peripheral 0.4 100.0 9.0;
    core 34 "uart_gpio" Core_spec.Peripheral 0.3 100.0 8.0;
    core 35 "power_ctrl" Core_spec.Peripheral 0.3 100.0 7.0;
  |]

let flows =
  Recipe.merge
    [
      (* CPU cluster: each CPU hits both L2 banks through the coherence
         agent; banks refill from the two DDR controllers *)
      Recipe.pair ~src:0 ~dst:4 ~bw:900.0 ~back:700.0 ~lat:10 ();
      Recipe.pair ~src:1 ~dst:4 ~bw:900.0 ~back:700.0 ~lat:10 ();
      Recipe.pair ~src:2 ~dst:5 ~bw:900.0 ~back:700.0 ~lat:10 ();
      Recipe.pair ~src:3 ~dst:5 ~bw:900.0 ~back:700.0 ~lat:10 ();
      Recipe.pair ~src:4 ~dst:6 ~bw:500.0 ~back:500.0 ~lat:12 ();
      Recipe.pair ~src:5 ~dst:6 ~bw:500.0 ~back:500.0 ~lat:12 ();
      Recipe.pair ~src:6 ~dst:7 ~bw:600.0 ~back:750.0 ~lat:12 ();
      Recipe.pair ~src:6 ~dst:8 ~bw:600.0 ~back:750.0 ~lat:12 ();
      Recipe.pair ~src:0 ~dst:9 ~bw:150.0 ~back:180.0 ~lat:16 ();
      (* GPU: front end dispatches to shaders, shaders hit the GPU cache,
         cache misses to DDR1 *)
      [ Flow.make ~src:11 ~dst:12 ~bw:450.0 ~lat:14 ];
      [ Flow.make ~src:11 ~dst:13 ~bw:450.0 ~lat:14 ];
      Recipe.pair ~src:12 ~dst:14 ~bw:800.0 ~back:650.0 ~lat:10 ();
      Recipe.pair ~src:13 ~dst:14 ~bw:800.0 ~back:650.0 ~lat:10 ();
      Recipe.pair ~src:14 ~dst:8 ~bw:700.0 ~back:850.0 ~lat:14 ();
      [ Flow.make ~src:6 ~dst:11 ~bw:120.0 ~lat:20 ];
      (* media: camera -> ISP -> (encoder, JPEG, DDR); decode to display *)
      [ Flow.make ~src:18 ~dst:17 ~bw:550.0 ~lat:18 ];
      [ Flow.make ~src:17 ~dst:16 ~bw:350.0 ~lat:20 ];
      [ Flow.make ~src:17 ~dst:19 ~bw:150.0 ~lat:26 ];
      Recipe.pair ~src:17 ~dst:7 ~bw:400.0 ~back:200.0 ~lat:22 ();
      Recipe.pair ~src:15 ~dst:7 ~bw:600.0 ~back:700.0 ~lat:16 ();
      Recipe.pair ~src:16 ~dst:7 ~bw:300.0 ~back:450.0 ~lat:20 ();
      [ Flow.make ~src:19 ~dst:7 ~bw:120.0 ~lat:30 ];
      (* display path *)
      Recipe.pipeline ~stages:[ 7; 22; 20; 21 ] ~bw:750.0 ~taper:1.1 ~lat:16 ();
      [ Flow.make ~src:15 ~dst:20 ~bw:400.0 ~lat:18 ];
      (* modem + GPS *)
      Recipe.pair ~src:25 ~dst:23 ~bw:280.0 ~back:280.0 ~lat:14 ();
      Recipe.pair ~src:23 ~dst:24 ~bw:550.0 ~back:550.0 ~lat:10 ();
      Recipe.pair ~src:23 ~dst:8 ~bw:220.0 ~back:180.0 ~lat:22 ();
      [ Flow.make ~src:32 ~dst:23 ~bw:60.0 ~lat:30 ];
      [ Flow.make ~src:23 ~dst:26 ~bw:60.0 ~lat:24 ];
      (* audio *)
      Recipe.pair ~src:26 ~dst:27 ~bw:70.0 ~back:70.0 ~lat:30 ();
      [ Flow.make ~src:7 ~dst:26 ~bw:90.0 ~lat:30 ];
      (* storage, USB, crypto against the memory system via DMA *)
      Recipe.hub ~center:10 ~spokes:[ 7; 9; 31 ] ~to_hub:350.0 ~from_hub:350.0
        ~lat:20;
      Recipe.pair ~src:29 ~dst:7 ~bw:250.0 ~back:250.0 ~lat:28 ();
      Recipe.pair ~src:30 ~dst:7 ~bw:180.0 ~back:180.0 ~lat:28 ();
      Recipe.pair ~src:28 ~dst:9 ~bw:160.0 ~back:160.0 ~lat:28 ();
      (* control plane *)
      Recipe.control_fanout ~master:0
        ~slaves:
          [ 6; 10; 11; 15; 16; 17; 18; 19; 20; 22; 23; 25; 26; 28; 29; 30;
            31; 32; 33; 34; 35 ]
        ~bw:20.0 ~lat:90;
      [ Flow.make ~src:35 ~dst:0 ~bw:12.0 ~lat:60 ];
      [ Flow.make ~src:33 ~dst:0 ~bw:25.0 ~lat:60 ];
    ]

let soc = Soc_spec.make ~name:"D36-tablet" ~cores ~flows ()

let default_vi =
  (* 0 CPU, 1 memory (always-on), 2 GPU, 3 media, 4 display, 5 modem+gps,
     6 audio+peripherals *)
  Vi.make ~islands:7
    ~of_core:
      [|
        0; 0; 0; 0; 0; 0; 1; 1; 1; 1; 1; 2; 2; 2; 2; 3; 3; 3; 3; 3; 4; 4; 4;
        5; 5; 5; 6; 6; 6; 6; 6; 1; 5; 6; 6; 6;
      |]
    ~shutdownable:[| true; false; true; true; true; true; true |]
    ()

let scenarios =
  [
    Scenario.make ~name:"screen_off_idle"
      ~used:[ 7; 9; 23; 24; 25; 26; 27; 33; 35 ]
      ~cores:(Array.length cores) ~duty:0.45;
    Scenario.make ~name:"music_screen_off"
      ~used:[ 7; 9; 10; 26; 27; 30; 31; 33; 35 ]
      ~cores:(Array.length cores) ~duty:0.15;
    Scenario.make ~name:"browsing"
      ~used:[ 0; 1; 4; 6; 7; 8; 9; 11; 12; 14; 20; 21; 22; 23; 24; 25; 33; 35 ]
      ~cores:(Array.length cores) ~duty:0.20;
    Scenario.make ~name:"video_call"
      ~used:
        [ 0; 4; 6; 7; 8; 15; 16; 17; 18; 20; 21; 22; 23; 24; 25; 26; 27; 35 ]
      ~cores:(Array.length cores) ~duty:0.10;
  ]
