(** Seeded random SoC generator.

    Produces structurally realistic specs (memory hubs, pipelines, control
    fan-out — not uniform random graphs) for property-based testing and for
    stressing the synthesis loop at sizes the hand-written benchmarks do
    not cover.  Deterministic for a fixed seed. *)

type profile = {
  cores : int;              (** total core count, >= 4 *)
  hub_fraction : float;     (** fraction of cores that act as memories/hubs *)
  pipeline_count : int;     (** number of streaming chains *)
  max_bw_mbps : float;      (** hottest flow bandwidth *)
  tight_latency : int;      (** tightest latency constraint (>= 10) *)
}

val default_profile : profile

val generate : seed:int -> profile -> Noc_spec.Soc_spec.t
(** @raise Invalid_argument on a malformed profile. *)

val random_vi : seed:int -> islands:int -> Noc_spec.Soc_spec.t -> Noc_spec.Vi.t
(** Random island assignment with every island non-empty; island 0 is
    marked always-on (it plays the shared-memory role). *)
