type t = {
  switch_dynamic_mw : float;
  switch_leakage_mw : float;
  link_dynamic_mw : float;
  link_leakage_mw : float;
  ni_dynamic_mw : float;
  ni_leakage_mw : float;
  sync_dynamic_mw : float;
  sync_leakage_mw : float;
}

let zero =
  {
    switch_dynamic_mw = 0.0;
    switch_leakage_mw = 0.0;
    link_dynamic_mw = 0.0;
    link_leakage_mw = 0.0;
    ni_dynamic_mw = 0.0;
    ni_leakage_mw = 0.0;
    sync_dynamic_mw = 0.0;
    sync_leakage_mw = 0.0;
  }

let add a b =
  {
    switch_dynamic_mw = a.switch_dynamic_mw +. b.switch_dynamic_mw;
    switch_leakage_mw = a.switch_leakage_mw +. b.switch_leakage_mw;
    link_dynamic_mw = a.link_dynamic_mw +. b.link_dynamic_mw;
    link_leakage_mw = a.link_leakage_mw +. b.link_leakage_mw;
    ni_dynamic_mw = a.ni_dynamic_mw +. b.ni_dynamic_mw;
    ni_leakage_mw = a.ni_leakage_mw +. b.ni_leakage_mw;
    sync_dynamic_mw = a.sync_dynamic_mw +. b.sync_dynamic_mw;
    sync_leakage_mw = a.sync_leakage_mw +. b.sync_leakage_mw;
  }

let sum reports = List.fold_left add zero reports

let scale k a =
  {
    switch_dynamic_mw = k *. a.switch_dynamic_mw;
    switch_leakage_mw = k *. a.switch_leakage_mw;
    link_dynamic_mw = k *. a.link_dynamic_mw;
    link_leakage_mw = k *. a.link_leakage_mw;
    ni_dynamic_mw = k *. a.ni_dynamic_mw;
    ni_leakage_mw = k *. a.ni_leakage_mw;
    sync_dynamic_mw = k *. a.sync_dynamic_mw;
    sync_leakage_mw = k *. a.sync_leakage_mw;
  }

let dynamic_mw t =
  t.switch_dynamic_mw +. t.link_dynamic_mw +. t.ni_dynamic_mw
  +. t.sync_dynamic_mw

let leakage_mw t =
  t.switch_leakage_mw +. t.link_leakage_mw +. t.ni_leakage_mw
  +. t.sync_leakage_mw

let total_mw t = dynamic_mw t +. leakage_mw t

let pp ppf t =
  Format.fprintf ppf
    "@[<v>power (mW): total %.2f = dynamic %.2f + leakage %.2f@,\
     \  switches  dyn %.2f leak %.2f@,\
     \  links     dyn %.2f leak %.2f@,\
     \  NIs       dyn %.2f leak %.2f@,\
     \  syncs     dyn %.2f leak %.2f@]"
    (total_mw t) (dynamic_mw t) (leakage_mw t) t.switch_dynamic_mw
    t.switch_leakage_mw t.link_dynamic_mw t.link_leakage_mw t.ni_dynamic_mw
    t.ni_leakage_mw
    t.sync_dynamic_mw t.sync_leakage_mw

let pp_brief ppf t =
  Format.fprintf ppf "%.2f mW (dyn %.2f, leak %.2f)" (total_mw t)
    (dynamic_mw t) (leakage_mw t)
