let crossing_latency_cycles = 4
let default_depth = 6

let check ~flit_bits =
  if flit_bits <= 0 then invalid_arg "Sync_model: flit_bits <= 0"

let area_mm2 ~flit_bits ~depth =
  check ~flit_bits;
  if depth < 2 then invalid_arg "Sync_model.area_mm2: depth < 2";
  0.0008 *. float_of_int depth *. (float_of_int flit_bits /. 32.0)

let energy_per_flit_pj tech ~flit_bits ~vdd =
  check ~flit_bits;
  (* FIFO write + read + gray-coded pointer synchronization + level
     shifting: comparable to a small switch traversal *)
  6.5 *. (float_of_int flit_bits /. 32.0) *. Tech.energy_scale tech ~vdd

let clock_power_mw tech ~flit_bits ~vdd ~freq_mhz =
  check ~flit_bits;
  if freq_mhz < 0.0 then invalid_arg "Sync_model.clock_power_mw: freq < 0";
  let energy_pj =
    1.2 *. (float_of_int flit_bits /. 32.0) *. Tech.energy_scale tech ~vdd
  in
  Units.power_mw_of_energy ~energy_pj ~events_per_second:(freq_mhz *. 1e6)

let leakage_mw tech ~flit_bits ~depth ~vdd =
  area_mm2 ~flit_bits ~depth *. tech.Tech.leakage_mw_per_mm2
  *. Tech.leakage_scale tech ~vdd

let dynamic_power_mw tech ~flit_bits ~vdd ~flits_per_second =
  if flits_per_second < 0.0 then
    invalid_arg "Sync_model.dynamic_power_mw: negative rate";
  Units.power_mw_of_energy
    ~energy_pj:(energy_per_flit_pj tech ~flit_bits ~vdd)
    ~events_per_second:flits_per_second
