(** Technology parameters for the NoC component models.

    The paper evaluates with 65 nm power/area/latency models for the
    ×pipesLite architecture, extended with bi-synchronous voltage/frequency
    converters.  We replace that proprietary library with analytic models
    calibrated to published 65 nm NoC figures; the synthesis algorithm only
    consumes relative costs, so orderings and crossovers are preserved
    (see DESIGN.md §2).

    Unit conventions used throughout the code base:
    bandwidth MB/s, frequency MHz, energy pJ, power mW, area mm²,
    length mm, time ns (or cycles where stated). *)

type t = {
  node_nm : int;                 (** feature size, e.g. 65 *)
  vdd_nominal : float;           (** nominal supply, V *)
  vdd_min : float;               (** lowest usable supply, V *)
  f_nominal_mhz : float;         (** frequency reachable at nominal VDD *)
  wire_delay_ns_per_mm : float;  (** repeatered global wire delay *)
  wire_energy_pj_per_mm_bit : float;
      (** switching energy of one wire bit over 1 mm at nominal VDD *)
  leakage_mw_per_mm2 : float;    (** logic leakage power density at nominal VDD *)
  clock_skew_margin_ns : float;  (** timing margin reserved per cycle *)
}

val default_65nm : t

val vdd_for_frequency : t -> freq_mhz:float -> float
(** Supply voltage needed to run logic at [freq_mhz]: scales linearly from
    [vdd_min] (at or below 15% of [f_nominal_mhz]) to [vdd_nominal] (at
    [f_nominal_mhz] and beyond).  This voltage–frequency scaling is what
    lets slow islands save dynamic energy — the effect behind Fig. 2's
    communication-based curve dipping below the single-island reference. *)

val energy_scale : t -> vdd:float -> float
(** Dynamic-energy multiplier [(vdd / vdd_nominal)²]. *)

val leakage_scale : t -> vdd:float -> float
(** First-order leakage multiplier, linear in VDD. *)

val max_unpipelined_mm : t -> freq_mhz:float -> float
(** Longest single-cycle (unpipelined) link at the given clock, after the
    skew margin.  The paper routes inter-island links unpipelined over the
    cells, so this bounds usable link lengths. *)

val pp : Format.formatter -> t -> unit
