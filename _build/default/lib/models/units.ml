let flits_per_second ~bw_mbps ~flit_bits =
  if flit_bits <= 0 then invalid_arg "Units.flits_per_second: flit_bits <= 0";
  if bw_mbps < 0.0 then invalid_arg "Units.flits_per_second: negative bandwidth";
  let bytes_per_flit = float_of_int flit_bits /. 8.0 in
  bw_mbps *. 1e6 /. bytes_per_flit

let power_mw_of_energy ~energy_pj ~events_per_second =
  (* pJ * events/s = 1e-12 J * events/s W = 1e-9 mW units *)
  energy_pj *. events_per_second *. 1e-9

let bandwidth_mbps_of_frequency ~freq_mhz ~flit_bits =
  if flit_bits <= 0 then
    invalid_arg "Units.bandwidth_mbps_of_frequency: flit_bits <= 0";
  freq_mhz *. float_of_int flit_bits /. 8.0

let frequency_mhz_for_bandwidth ~bw_mbps ~flit_bits =
  if flit_bits <= 0 then
    invalid_arg "Units.frequency_mhz_for_bandwidth: flit_bits <= 0";
  bw_mbps *. 8.0 /. float_of_int flit_bits
