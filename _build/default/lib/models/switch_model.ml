type config = {
  inputs : int;
  outputs : int;
  flit_bits : int;
  buffer_depth : int;
}

let arity c = max c.inputs c.outputs

let check_config c =
  if c.inputs < 1 || c.outputs < 1 then
    invalid_arg "Switch_model: switch needs at least one input and output";
  if c.flit_bits <= 0 then invalid_arg "Switch_model: flit_bits <= 0";
  if c.buffer_depth < 1 then invalid_arg "Switch_model: buffer_depth < 1"

(* Crossbar critical path grows with the log of the arity (mux tree depth)
   plus a linear arbitration term; calibrated so that a 5x5 switch closes
   around 900 MHz and a 16x16 below 500 MHz at 65 nm, in line with
   published xpipesLite figures (a 5x5 xpipes switch runs ~885 MHz). *)
let f_max_mhz tech ~arity =
  if arity < 2 then invalid_arg "Switch_model.f_max_mhz: arity < 2";
  let a = float_of_int arity in
  let path_ns =
    0.45 +. (0.06 *. log a /. log 2.0) +. (0.075 *. a)
    +. tech.Tech.clock_skew_margin_ns
  in
  1000.0 /. path_ns

let max_arity_for_frequency tech ~freq_mhz =
  if freq_mhz <= 0.0 then
    invalid_arg "Switch_model.max_arity_for_frequency: freq <= 0";
  if f_max_mhz tech ~arity:2 < freq_mhz then None
  else begin
    (* f_max is strictly decreasing, so walk up from 2; the cap keeps very
       slow islands from requesting absurd crossbars. *)
    let hard_cap = 64 in
    let rec climb arity =
      if arity >= hard_cap then hard_cap
      else if f_max_mhz tech ~arity:(arity + 1) >= freq_mhz then
        climb (arity + 1)
      else arity
    in
    Some (climb 2)
  end

let area_mm2 c =
  check_config c;
  let i = float_of_int c.inputs and o = float_of_int c.outputs in
  let width_scale = float_of_int c.flit_bits /. 32.0 in
  let depth_scale = float_of_int c.buffer_depth /. 4.0 in
  let crossbar = 0.00065 *. i *. o *. width_scale in
  let buffers = 0.0022 *. i *. width_scale *. depth_scale in
  let control = 0.0011 *. (i +. o) in
  crossbar +. buffers +. control

let energy_per_flit_pj tech c ~vdd =
  check_config c;
  let a = float_of_int (arity c) in
  let width_scale = float_of_int c.flit_bits /. 32.0 in
  let base = (4.2 +. (1.15 *. a)) *. width_scale in
  base *. Tech.energy_scale tech ~vdd

let leakage_mw tech c ~vdd =
  check_config c;
  area_mm2 c *. tech.Tech.leakage_mw_per_mm2 *. Tech.leakage_scale tech ~vdd

let clock_energy_pj_per_cycle c =
  check_config c;
  let a = float_of_int (arity c) in
  let width_scale = float_of_int c.flit_bits /. 32.0 in
  let depth_scale = float_of_int c.buffer_depth /. 4.0 in
  (3.5 +. (1.0 *. a *. depth_scale)) *. width_scale

let clock_power_mw tech c ~vdd ~freq_mhz =
  if freq_mhz < 0.0 then invalid_arg "Switch_model.clock_power_mw: freq < 0";
  Units.power_mw_of_energy
    ~energy_pj:(clock_energy_pj_per_cycle c *. Tech.energy_scale tech ~vdd)
    ~events_per_second:(freq_mhz *. 1e6)

let dynamic_power_mw tech c ~vdd ~flits_per_second =
  if flits_per_second < 0.0 then
    invalid_arg "Switch_model.dynamic_power_mw: negative rate";
  Units.power_mw_of_energy
    ~energy_pj:(energy_per_flit_pj tech c ~vdd)
    ~events_per_second:flits_per_second

let pipeline_latency_cycles = 2

let pp_config ppf c =
  Format.fprintf ppf "%dx%d@%dbit(buf %d)" c.inputs c.outputs c.flit_bits
    c.buffer_depth
