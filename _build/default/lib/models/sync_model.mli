(** Bi-synchronous FIFO voltage/frequency converter.

    Every link between switches in two different voltage islands goes
    through one of these (paper §3.1): it absorbs both the voltage
    difference (level shifters) and the frequency/skew difference between
    the two island clock trees.  The paper charges a 4-cycle zero-load
    penalty per island crossing (§5); this module is the "extended library
    model" the authors mention adding for these converters. *)

val crossing_latency_cycles : int
(** Zero-load cycles added per island crossing (paper: 4). *)

val area_mm2 : flit_bits:int -> depth:int -> float

val energy_per_flit_pj : Tech.t -> flit_bits:int -> vdd:float -> float
(** Energy to push one flit through the FIFO and its level shifters; [vdd]
    is the higher of the two island supplies. *)

val leakage_mw : Tech.t -> flit_bits:int -> depth:int -> vdd:float -> float

val dynamic_power_mw :
  Tech.t -> flit_bits:int -> vdd:float -> flits_per_second:float -> float

val clock_power_mw :
  Tech.t -> flit_bits:int -> vdd:float -> freq_mhz:float -> float
(** Clock/idle power of the converter, at the faster of its two clocks. *)

val default_depth : int
(** FIFO slots needed to sustain full throughput across the clock domains. *)
