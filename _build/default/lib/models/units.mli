(** Unit conversions shared by all component models.

    Keeping the conversion in one place avoids the classic power-model bug
    of mixing MB/s, bits and pJ inconsistently. *)

val flits_per_second : bw_mbps:float -> flit_bits:int -> float
(** Flit rate needed to carry [bw_mbps] megabytes/second on a [flit_bits]
    wide channel (one flit per cycle).
    @raise Invalid_argument if [flit_bits <= 0] or [bw_mbps < 0]. *)

val power_mw_of_energy : energy_pj:float -> events_per_second:float -> float
(** Average power of [events_per_second] events costing [energy_pj] each. *)

val bandwidth_mbps_of_frequency : freq_mhz:float -> flit_bits:int -> float
(** Peak bandwidth of a link clocked at [freq_mhz] with [flit_bits] wires:
    one flit per cycle. *)

val frequency_mhz_for_bandwidth : bw_mbps:float -> flit_bits:int -> float
(** Minimum clock for a link that must carry [bw_mbps]
    (inverse of {!bandwidth_mbps_of_frequency}). *)
