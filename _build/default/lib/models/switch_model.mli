(** Power/area/timing model of a wormhole NoC switch (×pipesLite-style).

    A switch with [inputs] input ports and [outputs] output ports contains an
    [inputs × outputs] crossbar, per-input buffering and arbitration.  Its
    {e arity} is [max inputs outputs]: the crossbar critical path — and hence
    the maximum clock — degrades with arity, which is exactly the
    [max_sw_size] constraint of the paper's Algorithm 1 (step 1). *)

type config = {
  inputs : int;
  outputs : int;
  flit_bits : int;
  buffer_depth : int;  (** flits per input port *)
}

val arity : config -> int

val f_max_mhz : Tech.t -> arity:int -> float
(** Highest clock a switch of that arity closes timing at, nominal VDD.
    Strictly decreasing in arity.
    @raise Invalid_argument if [arity < 2]. *)

val max_arity_for_frequency : Tech.t -> freq_mhz:float -> int option
(** Largest arity whose [f_max] still reaches [freq_mhz] — the paper's
    [max_sw_size] per island.  [None] if even a 2×2 switch cannot run that
    fast.  Inverse of {!f_max_mhz}. *)

val area_mm2 : config -> float
(** Silicon area: crossbar term quadratic in arity, buffer/arbiter term
    linear, both proportional to flit width. *)

val energy_per_flit_pj : Tech.t -> config -> vdd:float -> float
(** Energy to move one flit in one input and out one output at supply
    [vdd]. *)

val leakage_mw : Tech.t -> config -> vdd:float -> float
(** Static power of the (non-gated) switch at supply [vdd]. *)

val dynamic_power_mw :
  Tech.t -> config -> vdd:float -> flits_per_second:float -> float
(** Average switching power for an aggregate traversal rate. *)

val clock_power_mw : Tech.t -> config -> vdd:float -> freq_mhz:float -> float
(** Clock-tree and sequential idle power: burned every cycle whether or not
    flits move, so it scales with the island's clock and V² — the term that
    makes islands clocked below the reference design {e cheaper} (Fig. 2's
    communication-based curve) and is the reason slow islands save dynamic
    power at all. *)

val clock_energy_pj_per_cycle : config -> float
(** Energy the clock tree, FFs and arbiters burn per cycle (nominal VDD). *)

val pipeline_latency_cycles : int
(** Cycles a flit spends in the switch under zero load. *)

val pp_config : Format.formatter -> config -> unit
