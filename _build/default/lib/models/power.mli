(** Power report algebra.

    A report splits NoC power by component class, mirroring how the paper
    quotes Fig. 2 ("switches, links and the synchronizers"), and keeps
    dynamic and leakage contributions separate so the shutdown analysis can
    gate leakage per island. *)

type t = {
  switch_dynamic_mw : float;
  switch_leakage_mw : float;
  link_dynamic_mw : float;
  link_leakage_mw : float;
      (** pipeline register banks on pipelined links (0 when unpipelined) *)
  ni_dynamic_mw : float;
  ni_leakage_mw : float;
  sync_dynamic_mw : float;
  sync_leakage_mw : float;
}

val zero : t
val add : t -> t -> t
val sum : t list -> t
val scale : float -> t -> t

val dynamic_mw : t -> float
(** Total dynamic power (what Fig. 2 plots). *)

val leakage_mw : t -> float
val total_mw : t -> float

val pp : Format.formatter -> t -> unit
val pp_brief : Format.formatter -> t -> unit
