(** Point-to-point NoC link (wire bundle) model.

    Links between switches in different voltage islands are routed
    unpipelined over the cells (paper §3.1), so a link is feasible only if
    its length closes timing in one cycle at the clock of the driving
    island. *)

val energy_per_flit_pj :
  Tech.t -> length_mm:float -> flit_bits:int -> vdd:float -> float
(** Switching energy for one flit over the full wire length. *)

val dynamic_power_mw :
  Tech.t ->
  length_mm:float ->
  flit_bits:int ->
  vdd:float ->
  flits_per_second:float ->
  float

val delay_ns : Tech.t -> length_mm:float -> float

val fits_in_cycle : Tech.t -> length_mm:float -> freq_mhz:float -> bool
(** Can the link be traversed (unpipelined) within one clock period, skew
    margin included? *)

val traversal_cycles : int
(** Cycles a flit spends on a (single-cycle) link under zero load. *)

val area_mm2 : length_mm:float -> flit_bits:int -> float
(** Repeater/driver area footprint attributed to the link (the wires
    themselves ride over the cells). *)

val stages_for : Tech.t -> length_mm:float -> freq_mhz:float -> int
(** Pipeline registers needed so every wire segment closes one-cycle
    timing at [freq_mhz]: [0] when the link already {!fits_in_cycle}. *)

val register_energy_per_flit_pj : Tech.t -> flit_bits:int -> vdd:float -> float
(** Energy one pipeline register bank charges per flit. *)

val register_area_mm2 : flit_bits:int -> float
(** Area of one pipeline register bank. *)
