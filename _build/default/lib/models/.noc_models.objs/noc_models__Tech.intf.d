lib/models/tech.mli: Format
