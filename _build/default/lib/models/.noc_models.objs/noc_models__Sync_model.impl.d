lib/models/sync_model.ml: Tech Units
