lib/models/power.ml: Format List
