lib/models/sync_model.mli: Tech
