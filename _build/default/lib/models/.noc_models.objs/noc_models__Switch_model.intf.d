lib/models/switch_model.mli: Format Tech
