lib/models/units.ml:
