lib/models/link_model.ml: Float Tech Units
