lib/models/units.mli:
