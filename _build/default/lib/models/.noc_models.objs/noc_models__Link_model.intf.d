lib/models/link_model.mli: Tech
