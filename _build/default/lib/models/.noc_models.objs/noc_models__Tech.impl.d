lib/models/tech.ml: Float Format
