lib/models/ni_model.mli: Tech
