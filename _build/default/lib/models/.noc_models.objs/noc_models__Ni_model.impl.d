lib/models/ni_model.ml: Tech Units
