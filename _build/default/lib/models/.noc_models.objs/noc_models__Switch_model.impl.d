lib/models/switch_model.ml: Format Tech Units
