lib/models/power.mli: Format
