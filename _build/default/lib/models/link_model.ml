let check ~length_mm ~flit_bits =
  if length_mm < 0.0 then invalid_arg "Link_model: negative length";
  if flit_bits <= 0 then invalid_arg "Link_model: flit_bits <= 0"

let energy_per_flit_pj tech ~length_mm ~flit_bits ~vdd =
  check ~length_mm ~flit_bits;
  (* Half the wires toggle on a random payload. *)
  let toggling_bits = 0.5 *. float_of_int flit_bits in
  tech.Tech.wire_energy_pj_per_mm_bit *. length_mm *. toggling_bits
  *. Tech.energy_scale tech ~vdd

let dynamic_power_mw tech ~length_mm ~flit_bits ~vdd ~flits_per_second =
  if flits_per_second < 0.0 then
    invalid_arg "Link_model.dynamic_power_mw: negative rate";
  Units.power_mw_of_energy
    ~energy_pj:(energy_per_flit_pj tech ~length_mm ~flit_bits ~vdd)
    ~events_per_second:flits_per_second

let delay_ns tech ~length_mm =
  if length_mm < 0.0 then invalid_arg "Link_model.delay_ns: negative length";
  tech.Tech.wire_delay_ns_per_mm *. length_mm

let fits_in_cycle tech ~length_mm ~freq_mhz =
  if freq_mhz <= 0.0 then invalid_arg "Link_model.fits_in_cycle: freq <= 0";
  length_mm <= Tech.max_unpipelined_mm tech ~freq_mhz

let traversal_cycles = 1

let area_mm2 ~length_mm ~flit_bits =
  check ~length_mm ~flit_bits;
  (* repeater every ~1 mm per wire, tiny driver cells *)
  0.00002 *. length_mm *. float_of_int flit_bits

let stages_for tech ~length_mm ~freq_mhz =
  check ~length_mm ~flit_bits:1;
  if freq_mhz <= 0.0 then invalid_arg "Link_model.stages_for: freq <= 0";
  let budget = Tech.max_unpipelined_mm tech ~freq_mhz in
  if budget <= 0.0 then invalid_arg "Link_model.stages_for: no timing budget";
  if length_mm <= budget then 0
  else int_of_float (Float.ceil (length_mm /. budget)) - 1

let register_energy_per_flit_pj tech ~flit_bits ~vdd =
  check ~length_mm:0.0 ~flit_bits;
  0.9 *. (float_of_int flit_bits /. 32.0) *. Tech.energy_scale tech ~vdd

let register_area_mm2 ~flit_bits =
  check ~length_mm:0.0 ~flit_bits;
  0.00035 *. (float_of_int flit_bits /. 32.0)
