(** Network Interface model.

    An NI converts the core's protocol to the network's and crosses the
    core clock into the island's NoC clock (paper §3.1).  Every core owns
    exactly one NI attached to exactly one switch of its own island. *)

val area_mm2 : flit_bits:int -> float

val energy_per_flit_pj : Tech.t -> flit_bits:int -> vdd:float -> float

val leakage_mw : Tech.t -> flit_bits:int -> vdd:float -> float

val dynamic_power_mw :
  Tech.t -> flit_bits:int -> vdd:float -> flits_per_second:float -> float

val clock_power_mw :
  Tech.t -> flit_bits:int -> vdd:float -> freq_mhz:float -> float
(** Clock/idle power of the NI at its island's NoC clock. *)

val latency_cycles : int
(** Zero-load cycles through one NI (packetization or de-packetization). *)
