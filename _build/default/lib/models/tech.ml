type t = {
  node_nm : int;
  vdd_nominal : float;
  vdd_min : float;
  f_nominal_mhz : float;
  wire_delay_ns_per_mm : float;
  wire_energy_pj_per_mm_bit : float;
  leakage_mw_per_mm2 : float;
  clock_skew_margin_ns : float;
}

let default_65nm =
  {
    node_nm = 65;
    vdd_nominal = 1.0;
    vdd_min = 0.65;
    f_nominal_mhz = 1000.0;
    wire_delay_ns_per_mm = 0.17;
    wire_energy_pj_per_mm_bit = 0.12;
    leakage_mw_per_mm2 = 15.0;
    clock_skew_margin_ns = 0.15;
  }

let vdd_for_frequency t ~freq_mhz =
  let knee = 0.15 *. t.f_nominal_mhz in
  if freq_mhz <= knee then t.vdd_min
  else if freq_mhz >= t.f_nominal_mhz then t.vdd_nominal
  else begin
    let fraction = (freq_mhz -. knee) /. (t.f_nominal_mhz -. knee) in
    t.vdd_min +. (fraction *. (t.vdd_nominal -. t.vdd_min))
  end

let energy_scale t ~vdd =
  let r = vdd /. t.vdd_nominal in
  r *. r

let leakage_scale t ~vdd = vdd /. t.vdd_nominal

let max_unpipelined_mm t ~freq_mhz =
  if freq_mhz <= 0.0 then invalid_arg "Tech.max_unpipelined_mm: freq <= 0";
  let period_ns = 1000.0 /. freq_mhz in
  let usable = period_ns -. t.clock_skew_margin_ns in
  Float.max 0.0 (usable /. t.wire_delay_ns_per_mm)

let pp ppf t =
  Format.fprintf ppf
    "@[<v>tech %dnm: vdd %g..%gV, f_nom %g MHz,@ wire %g ns/mm %g pJ/mm/bit, \
     leak %g mW/mm2@]"
    t.node_nm t.vdd_min t.vdd_nominal t.f_nominal_mhz t.wire_delay_ns_per_mm
    t.wire_energy_pj_per_mm_bit t.leakage_mw_per_mm2
