(** Simulated-annealing refinement of a core placement.

    Moves swap the rectangles of two cores of the {e same} island (so VI
    contiguity and legality are preserved by construction; unequal core
    sizes are handled by re-centering each core's rectangle on the other's
    slot center and re-clamping into the island).  The objective is the
    flow-weighted Manhattan wirelength of {!Placer.wirelength}. *)

type schedule = {
  iterations : int;
  start_temperature : float;  (** in units of relative cost increase *)
  cooling : float;            (** geometric factor per iteration *)
}

val default_schedule : schedule

val improve :
  ?seed:int ->
  ?schedule:schedule ->
  Noc_spec.Soc_spec.t ->
  Noc_spec.Vi.t ->
  Placer.plan ->
  Placer.plan
(** Deterministic for a fixed [seed].  Never returns a worse placement than
    the input (keeps the best seen).  Placement legality
    ({!Placer.check_plan}) is preserved. *)
