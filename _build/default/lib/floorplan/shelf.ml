type block = {
  block_id : int;
  area_mm2 : float;
  aspect : float;
}

let natural_size b =
  let w = sqrt (b.area_mm2 *. b.aspect) in
  let h = b.area_mm2 /. w in
  (w, h)

(* Next-fit decreasing-height at a given uniform shrink factor.  Returns the
   placements or [None] when the region overflows. *)
let try_pack ~region blocks scale =
  let open Geometry in
  let sorted =
    List.sort
      (fun a b ->
        let _, ha = natural_size a and _, hb = natural_size b in
        compare (hb, b.block_id) (ha, a.block_id))
      blocks
  in
  let placements = Hashtbl.create (List.length blocks) in
  let shelf_y = ref region.ry in
  let shelf_h = ref 0.0 in
  let cursor_x = ref region.rx in
  let ok = ref true in
  let place b =
    if !ok then begin
      let w, h = natural_size b in
      let w = w *. scale and h = h *. scale in
      if w > region.rw || h > region.rh then ok := false
      else begin
        if !cursor_x +. w > region.rx +. region.rw +. 1e-9 then begin
          (* open a new shelf *)
          shelf_y := !shelf_y +. !shelf_h;
          shelf_h := 0.0;
          cursor_x := region.rx
        end;
        if !shelf_y +. h > region.ry +. region.rh +. 1e-9 then ok := false
        else begin
          Hashtbl.replace placements b.block_id
            (rect ~x:!cursor_x ~y:!shelf_y ~w ~h);
          cursor_x := !cursor_x +. w;
          if h > !shelf_h then shelf_h := h
        end
      end
    end
  in
  List.iter place sorted;
  if !ok then Some placements else None

let pack ~region blocks =
  let open Geometry in
  if blocks = [] then invalid_arg "Shelf.pack: no blocks";
  if region.rw <= 0.0 || region.rh <= 0.0 then
    invalid_arg "Shelf.pack: degenerate region";
  List.iter
    (fun b ->
      if b.area_mm2 <= 0.0 then invalid_arg "Shelf.pack: non-positive area";
      if b.aspect <= 0.0 then invalid_arg "Shelf.pack: non-positive aspect")
    blocks;
  let rec attempt scale tries =
    if tries = 0 then
      invalid_arg "Shelf.pack: blocks cannot fit the region even when shrunk"
    else
      match try_pack ~region blocks scale with
      | Some placements -> placements
      | None -> attempt (scale *. 0.9) (tries - 1)
  in
  let placements = attempt 1.0 80 in
  List.map (fun b -> (b.block_id, Hashtbl.find placements b.block_id)) blocks
