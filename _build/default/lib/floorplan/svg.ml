module Soc_spec = Noc_spec.Soc_spec
module Vi = Noc_spec.Vi
module Core_spec = Noc_spec.Core_spec

type canvas = {
  buffer : Buffer.t;
  px_per_mm : float;
  height_mm : float;
  width_mm : float;
}

let canvas ~width_mm ~height_mm ?(px_per_mm = 60.0) () =
  if width_mm <= 0.0 || height_mm <= 0.0 then
    invalid_arg "Svg.canvas: degenerate dimensions";
  { buffer = Buffer.create 4096; px_per_mm; height_mm; width_mm }

let px c v = v *. c.px_per_mm
let x_of c x = px c x
let y_of c y = px c (c.height_mm -. y) (* flip: SVG origin is top-left *)

let rect c r ~fill ?(stroke = "#333333") ?(opacity = 1.0) () =
  let open Geometry in
  Buffer.add_string c.buffer
    (Printf.sprintf
       "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" \
        fill=\"%s\" stroke=\"%s\" fill-opacity=\"%.2f\"/>\n"
       (x_of c r.rx)
       (y_of c (r.ry +. r.rh))
       (px c r.rw) (px c r.rh) fill stroke opacity)

let line c a b ~stroke ?(width = 1.5) ?(dashed = false) () =
  let open Geometry in
  Buffer.add_string c.buffer
    (Printf.sprintf
       "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"%s\" \
        stroke-width=\"%.1f\"%s/>\n"
       (x_of c a.x) (y_of c a.y) (x_of c b.x) (y_of c b.y) stroke width
       (if dashed then " stroke-dasharray=\"6,4\"" else ""))

let circle c p ~r_mm ~fill =
  let open Geometry in
  Buffer.add_string c.buffer
    (Printf.sprintf
       "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"%.1f\" fill=\"%s\" \
        stroke=\"#222222\"/>\n"
       (x_of c p.x) (y_of c p.y) (px c r_mm) fill)

let text c p ?(size_mm = 0.22) ?(fill = "#111111") s =
  let open Geometry in
  let escape s =
    let b = Buffer.create (String.length s) in
    String.iter
      (function
        | '<' -> Buffer.add_string b "&lt;"
        | '>' -> Buffer.add_string b "&gt;"
        | '&' -> Buffer.add_string b "&amp;"
        | ch -> Buffer.add_char b ch)
      s;
    Buffer.contents b
  in
  Buffer.add_string c.buffer
    (Printf.sprintf
       "<text x=\"%.1f\" y=\"%.1f\" font-size=\"%.1f\" fill=\"%s\" \
        font-family=\"monospace\" text-anchor=\"middle\">%s</text>\n"
       (x_of c p.x) (y_of c p.y) (px c size_mm) fill (escape s))

let render c =
  Printf.sprintf
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" \
     height=\"%.0f\" viewBox=\"0 0 %.0f %.0f\">\n\
     <rect width=\"100%%\" height=\"100%%\" fill=\"#fafafa\"/>\n\
     %s</svg>\n"
    (px c c.width_mm) (px c c.height_mm) (px c c.width_mm) (px c c.height_mm)
    (Buffer.contents c.buffer)

let palette =
  [|
    "#aed9e0"; "#ffe0ac"; "#c8e6c9"; "#f3c1d9"; "#d7ccc8"; "#ffd54f";
    "#b3e5fc"; "#e1bee7"; "#dcedc8"; "#ffccbc";
  |]

let island_color isl = palette.(abs isl mod Array.length palette)
let channel_color = "#9e9e9e"

let plan_canvas soc vi plan =
  let die = plan.Placer.die in
  let c = canvas ~width_mm:die.Geometry.rw ~height_mm:die.Geometry.rh () in
  rect c die ~fill:"#ffffff" ();
  Array.iteri
    (fun isl r ->
      let fill = island_color isl in
      let opacity = if vi.Vi.shutdownable.(isl) then 0.55 else 0.85 in
      rect c r ~fill ~opacity ())
    plan.Placer.island_rects;
  (match plan.Placer.noc_channel with
   | Some channel -> rect c channel ~fill:channel_color ~opacity:0.5 ()
   | None -> ());
  Array.iteri
    (fun core r ->
      rect c r ~fill:"#ffffff" ~opacity:0.9 ();
      let name = soc.Soc_spec.cores.(core).Core_spec.name in
      text c (Geometry.center r) name)
    plan.Placer.core_rects;
  Array.iteri
    (fun isl r ->
      let label =
        Printf.sprintf "VI%d%s" isl
          (if vi.Vi.shutdownable.(isl) then "" else " (on)")
      in
      text c
        (Geometry.point
           (r.Geometry.rx +. (r.Geometry.rw /. 2.0))
           (r.Geometry.ry +. r.Geometry.rh -. 0.25))
        ~size_mm:0.3 ~fill:"#444444" label)
    plan.Placer.island_rects;
  c

let of_plan soc vi plan = render (plan_canvas soc vi plan)
