lib/floorplan/wiring.mli: Geometry Placer
