lib/floorplan/islands_layout.ml: Array Float Geometry List
