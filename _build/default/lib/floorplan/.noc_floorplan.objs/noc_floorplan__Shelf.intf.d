lib/floorplan/shelf.mli: Geometry
