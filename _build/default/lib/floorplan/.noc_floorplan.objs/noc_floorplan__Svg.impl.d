lib/floorplan/svg.ml: Array Buffer Geometry Noc_spec Placer Printf String
