lib/floorplan/geometry.mli: Format
