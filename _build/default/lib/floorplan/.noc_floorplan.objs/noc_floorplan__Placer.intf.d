lib/floorplan/placer.mli: Geometry Noc_spec
