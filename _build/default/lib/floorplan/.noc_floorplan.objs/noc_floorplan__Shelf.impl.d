lib/floorplan/shelf.ml: Geometry Hashtbl List
