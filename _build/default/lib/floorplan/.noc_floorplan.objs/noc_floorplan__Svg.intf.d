lib/floorplan/svg.mli: Geometry Noc_spec Placer
