lib/floorplan/anneal.mli: Noc_spec Placer
