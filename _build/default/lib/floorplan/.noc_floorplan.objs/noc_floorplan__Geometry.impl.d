lib/floorplan/geometry.ml: Float Format
