lib/floorplan/anneal.ml: Array Float Geometry List Noc_spec Placer Random
