lib/floorplan/wiring.ml: Array Geometry List Placer
