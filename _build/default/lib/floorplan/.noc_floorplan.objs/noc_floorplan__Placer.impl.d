lib/floorplan/placer.ml: Array Geometry Islands_layout List Noc_spec Printf Shelf
