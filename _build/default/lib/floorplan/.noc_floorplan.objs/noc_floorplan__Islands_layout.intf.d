lib/floorplan/islands_layout.mli: Geometry
