(** Shelf (row) packing of blocks into a rectangular region.

    Blocks are placed left-to-right in rows of decreasing height — the
    classic next-fit decreasing-height heuristic.  Good enough for core
    placement inside a voltage island: what downstream consumers need is a
    legal, overlap-free placement with sane wire lengths, not an optimal
    one. *)

type block = {
  block_id : int;
  area_mm2 : float;
  aspect : float;  (** width/height ratio, 1.0 = square *)
}

val pack : region:Geometry.rect -> block list -> (int * Geometry.rect) list
(** Place every block inside [region] (blocks shrink uniformly if they do
    not fit at natural size — the island region was sized with slack, so
    this is a safety net).  Returns [(block_id, rect)] in input order.
    Guarantees: rects are pairwise non-overlapping and inside [region].
    @raise Invalid_argument on empty block list, non-positive areas or a
    degenerate region. *)
