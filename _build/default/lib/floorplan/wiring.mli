(** NoC component placement on a finished core placement, and wire-length
    extraction for links.

    Switches carry no floorplan area of their own in the evaluation (they
    are orders of magnitude smaller than cores and sit in the routing
    slack); what matters is {e where} they are, because link power and delay
    are proportional to wire length (paper §4, last step: "the NoC
    components are inserted on the floorplan and the wire lengths, wire
    power and delay are calculated"). *)

val switch_position :
  Placer.plan ->
  island:int ->
  attached_cores:(int * float) list ->
  Geometry.point
(** Bandwidth-weighted centroid of the switch's attached cores, clamped
    into the island rectangle.  [attached_cores] pairs core ids with a
    positive weight (their NI bandwidth); an empty or zero-weight list
    falls back to the island center. *)

val channel_position : Placer.plan -> index:int -> count:int -> Geometry.point
(** Position of the [index]-th of [count] intermediate-island switches,
    spread evenly along the NoC channel (or the die center column if no
    channel was reserved). *)

val ni_position : Placer.plan -> core:int -> Geometry.point
(** The NI sits at its core's boundary — modeled as the core center. *)

val link_length_mm : Geometry.point -> Geometry.point -> float
(** Manhattan wire length between two NoC component positions. *)
