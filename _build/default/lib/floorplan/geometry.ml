type point = { x : float; y : float }
type rect = { rx : float; ry : float; rw : float; rh : float }

let point x y = { x; y }

let rect ~x ~y ~w ~h =
  if w < 0.0 || h < 0.0 then invalid_arg "Geometry.rect: negative dimension";
  { rx = x; ry = y; rw = w; rh = h }

let center r = { x = r.rx +. (r.rw /. 2.0); y = r.ry +. (r.rh /. 2.0) }
let area r = r.rw *. r.rh

let manhattan a b = Float.abs (a.x -. b.x) +. Float.abs (a.y -. b.y)

let contains r p =
  p.x >= r.rx && p.x <= r.rx +. r.rw && p.y >= r.ry && p.y <= r.ry +. r.rh

let contains_rect outer inner =
  inner.rx >= outer.rx -. 1e-9
  && inner.ry >= outer.ry -. 1e-9
  && inner.rx +. inner.rw <= outer.rx +. outer.rw +. 1e-9
  && inner.ry +. inner.rh <= outer.ry +. outer.rh +. 1e-9

let overlap_area a b =
  let ox =
    Float.min (a.rx +. a.rw) (b.rx +. b.rw) -. Float.max a.rx b.rx
  in
  let oy =
    Float.min (a.ry +. a.rh) (b.ry +. b.rh) -. Float.max a.ry b.ry
  in
  if ox > 0.0 && oy > 0.0 then ox *. oy else 0.0

let clamp_point r p =
  {
    x = Float.min (Float.max p.x r.rx) (r.rx +. r.rw);
    y = Float.min (Float.max p.y r.ry) (r.ry +. r.rh);
  }

let inset r margin =
  let w = Float.max 0.0 (r.rw -. (2.0 *. margin)) in
  let h = Float.max 0.0 (r.rh -. (2.0 *. margin)) in
  let c = center r in
  { rx = c.x -. (w /. 2.0); ry = c.y -. (h /. 2.0); rw = w; rh = h }

let pp_point ppf p = Format.fprintf ppf "(%.2f,%.2f)" p.x p.y

let pp_rect ppf r =
  Format.fprintf ppf "[%.2f,%.2f %.2fx%.2f]" r.rx r.ry r.rw r.rh
