let switch_position plan ~island ~attached_cores =
  let region = plan.Placer.island_rects.(island) in
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 attached_cores in
  if attached_cores = [] || total <= 0.0 then Geometry.center region
  else begin
    let sx = ref 0.0 and sy = ref 0.0 in
    List.iter
      (fun (core, w) ->
        let c = Geometry.center plan.Placer.core_rects.(core) in
        sx := !sx +. (w *. c.Geometry.x);
        sy := !sy +. (w *. c.Geometry.y))
      attached_cores;
    Geometry.clamp_point region
      (Geometry.point (!sx /. total) (!sy /. total))
  end

let channel_position plan ~index ~count =
  if count < 1 then invalid_arg "Wiring.channel_position: count < 1";
  if index < 0 || index >= count then
    invalid_arg "Wiring.channel_position: index out of range";
  let region =
    match plan.Placer.noc_channel with
    | Some channel -> channel
    | None ->
      (* fall back to a virtual center column of the die *)
      let die = plan.Placer.die in
      Geometry.rect
        ~x:(die.Geometry.rx +. (die.Geometry.rw *. 0.47))
        ~y:die.Geometry.ry
        ~w:(die.Geometry.rw *. 0.06)
        ~h:die.Geometry.rh
  in
  let c = Geometry.center region in
  let step = region.Geometry.rh /. float_of_int (count + 1) in
  Geometry.point c.Geometry.x
    (region.Geometry.ry +. (step *. float_of_int (index + 1)))

let ni_position plan ~core = Geometry.center plan.Placer.core_rects.(core)

let link_length_mm = Geometry.manhattan
