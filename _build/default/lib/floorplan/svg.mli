(** SVG rendering of floorplans (the visual counterpart of the paper's
    Fig. 5), plus the drawing primitives {!Noc_synthesis}'s topology
    overlay builds on.

    Geometry coordinates (mm) are scaled by a pixels-per-mm factor; the
    y-axis is flipped so the floorplan's origin is bottom-left as usual in
    physical design. *)

type canvas
(** An SVG drawing surface with a fixed mm→px transform. *)

val canvas : width_mm:float -> height_mm:float -> ?px_per_mm:float -> unit -> canvas

val rect :
  canvas ->
  Geometry.rect ->
  fill:string ->
  ?stroke:string ->
  ?opacity:float ->
  unit ->
  unit

val line :
  canvas ->
  Geometry.point ->
  Geometry.point ->
  stroke:string ->
  ?width:float ->
  ?dashed:bool ->
  unit ->
  unit

val circle : canvas -> Geometry.point -> r_mm:float -> fill:string -> unit

val text :
  canvas -> Geometry.point -> ?size_mm:float -> ?fill:string -> string -> unit

val render : canvas -> string
(** The complete SVG document. *)

val island_color : int -> string
(** Stable pastel fill per island id (the intermediate island uses
    {!channel_color}). *)

val channel_color : string

val plan_canvas :
  Noc_spec.Soc_spec.t -> Noc_spec.Vi.t -> Placer.plan -> canvas
(** A canvas pre-drawn with the die outline, island regions (colored,
    always-on islands hatched darker), the intermediate NoC channel and
    every core rectangle with its name.  Callers may keep drawing on it
    (e.g. the NoC overlay) before {!render}. *)

val of_plan : Noc_spec.Soc_spec.t -> Noc_spec.Vi.t -> Placer.plan -> string
(** [render (plan_canvas ...)]: floorplan-only SVG document. *)
