(** Partition of the die outline into one contiguous rectangle per voltage
    island.

    VIs must be contiguous so a single pair of power/ground rails feeds each
    island (paper §1); the layout slices the die with alternating
    vertical/horizontal guillotine cuts, giving each island area
    proportional to its demand.  When an always-on intermediate NoC VI is
    requested, a thin central channel is reserved for it before slicing. *)

type t = {
  die : Geometry.rect;
  island_rects : Geometry.rect array;  (** indexed by island id *)
  noc_channel : Geometry.rect option;
      (** region of the intermediate NoC VI, if reserved *)
}

val layout :
  die_area_mm2:float ->
  ?die_aspect:float ->
  ?channel_fraction:float ->
  island_areas:float array ->
  with_channel:bool ->
  unit ->
  t
(** [die_aspect] defaults to 1.0 (square die), [channel_fraction] (die width
    devoted to the NoC channel) to 0.06.  Island rectangles tile the die
    minus the channel; every island with positive area demand gets a
    non-degenerate rectangle.
    @raise Invalid_argument if areas are negative, their sum exceeds the die
    area, or no island is given. *)
