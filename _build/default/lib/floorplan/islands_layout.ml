type t = {
  die : Geometry.rect;
  island_rects : Geometry.rect array;
  noc_channel : Geometry.rect option;
}

(* Split items into two groups of roughly equal area demand (greedy,
   heaviest first), both non-empty. *)
let balanced_halves items =
  match items with
  | [] | [ _ ] -> invalid_arg "Islands_layout: halving fewer than two items"
  | _ ->
    let sorted = List.sort (fun (_, a) (_, b) -> compare b a) items in
    let g1 = ref [] and g2 = ref [] in
    let w1 = ref 0.0 and w2 = ref 0.0 in
    let assign ((_, area) as item) =
      if !w1 <= !w2 then begin
        g1 := item :: !g1;
        w1 := !w1 +. area
      end
      else begin
        g2 := item :: !g2;
        w2 := !w2 +. area
      end
    in
    List.iter assign sorted;
    (match (!g1, !g2) with
     | [], item :: rest ->
       g1 := [ item ];
       g2 := rest
     | item :: rest, [] ->
       g2 := [ item ];
       g1 := rest
     | _ -> ());
    (List.rev !g1, List.rev !g2)

let rec slice region items acc =
  let open Geometry in
  match items with
  | [] -> acc
  | [ (id, _) ] -> (id, region) :: acc
  | _ ->
    let g1, g2 = balanced_halves items in
    let a1 = List.fold_left (fun s (_, a) -> s +. a) 0.0 g1 in
    let a2 = List.fold_left (fun s (_, a) -> s +. a) 0.0 g2 in
    let fraction = if a1 +. a2 <= 0.0 then 0.5 else a1 /. (a1 +. a2) in
    (* keep both sides non-degenerate even for zero-demand islands *)
    let fraction = Float.min 0.9 (Float.max 0.1 fraction) in
    let r1, r2 =
      if region.rw >= region.rh then begin
        let w1 = region.rw *. fraction in
        ( rect ~x:region.rx ~y:region.ry ~w:w1 ~h:region.rh,
          rect ~x:(region.rx +. w1) ~y:region.ry ~w:(region.rw -. w1)
            ~h:region.rh )
      end
      else begin
        let h1 = region.rh *. fraction in
        ( rect ~x:region.rx ~y:region.ry ~w:region.rw ~h:h1,
          rect ~x:region.rx ~y:(region.ry +. h1) ~w:region.rw
            ~h:(region.rh -. h1) )
      end
    in
    slice r2 g2 (slice r1 g1 acc)

let layout ~die_area_mm2 ?(die_aspect = 1.0) ?(channel_fraction = 0.06)
    ~island_areas ~with_channel () =
  let open Geometry in
  let islands = Array.length island_areas in
  if islands = 0 then invalid_arg "Islands_layout.layout: no island";
  if die_area_mm2 <= 0.0 then invalid_arg "Islands_layout.layout: bad die area";
  if die_aspect <= 0.0 then invalid_arg "Islands_layout.layout: bad aspect";
  if channel_fraction <= 0.0 || channel_fraction >= 0.5 then
    invalid_arg "Islands_layout.layout: channel_fraction out of (0,0.5)";
  Array.iter
    (fun a ->
      if a < 0.0 then invalid_arg "Islands_layout.layout: negative island area")
    island_areas;
  let total_demand = Array.fold_left ( +. ) 0.0 island_areas in
  if total_demand > die_area_mm2 +. 1e-9 then
    invalid_arg "Islands_layout.layout: island demand exceeds die area";
  let die_w = sqrt (die_area_mm2 *. die_aspect) in
  let die_h = die_area_mm2 /. die_w in
  let die = rect ~x:0.0 ~y:0.0 ~w:die_w ~h:die_h in
  let items =
    Array.to_list (Array.mapi (fun i a -> (i, a)) island_areas)
  in
  let noc_channel, regions =
    if with_channel && islands > 1 then begin
      let cw = die_w *. channel_fraction in
      let cx = (die_w -. cw) /. 2.0 in
      let channel = rect ~x:cx ~y:0.0 ~w:cw ~h:die_h in
      let left = rect ~x:0.0 ~y:0.0 ~w:cx ~h:die_h in
      let right =
        rect ~x:(cx +. cw) ~y:0.0 ~w:(die_w -. cx -. cw) ~h:die_h
      in
      let g1, g2 = balanced_halves items in
      (Some channel, slice right g2 (slice left g1 []))
    end
    else (None, slice die items [])
  in
  let island_rects = Array.make islands die in
  List.iter (fun (id, r) -> island_rects.(id) <- r) regions;
  { die; island_rects; noc_channel }
