module Soc_spec = Noc_spec.Soc_spec
module Vi = Noc_spec.Vi
module Flow = Noc_spec.Flow

type schedule = {
  iterations : int;
  start_temperature : float;
  cooling : float;
}

let default_schedule =
  { iterations = 4000; start_temperature = 0.08; cooling = 0.9988 }

(* Rect with the same dimensions re-centered at [c], pushed back inside
   [region] if the new position sticks out. *)
let recenter region r c =
  let open Geometry in
  let x = c.x -. (r.rw /. 2.0) and y = c.y -. (r.rh /. 2.0) in
  let x = Float.min (Float.max x region.rx) (region.rx +. region.rw -. r.rw) in
  let y = Float.min (Float.max y region.ry) (region.ry +. region.rh -. r.rh) in
  rect ~x ~y ~w:r.rw ~h:r.rh

let flows_touching soc =
  let n = Soc_spec.core_count soc in
  let per_core = Array.make n [] in
  List.iter
    (fun f ->
      per_core.(f.Flow.src) <- f :: per_core.(f.Flow.src);
      per_core.(f.Flow.dst) <- f :: per_core.(f.Flow.dst))
    soc.Soc_spec.flows;
  per_core

let cost_of_core rects per_core core =
  List.fold_left
    (fun acc f ->
      let a = Geometry.center rects.(f.Flow.src) in
      let b = Geometry.center rects.(f.Flow.dst) in
      acc +. (f.Flow.bandwidth_mbps *. Geometry.manhattan a b))
    0.0 per_core.(core)

let shared_flow_cost rects per_core a b =
  (* flows between a and b are counted by both cost_of_core calls *)
  List.fold_left
    (fun acc f ->
      if (f.Flow.src = a && f.Flow.dst = b) || (f.Flow.src = b && f.Flow.dst = a)
      then begin
        let pa = Geometry.center rects.(f.Flow.src) in
        let pb = Geometry.center rects.(f.Flow.dst) in
        acc +. (f.Flow.bandwidth_mbps *. Geometry.manhattan pa pb)
      end
      else acc)
    0.0 per_core.(a)

let pair_cost rects per_core a b =
  cost_of_core rects per_core a
  +. cost_of_core rects per_core b
  -. shared_flow_cost rects per_core a b

let legal_in_island rects members region a b =
  let ok r =
    Geometry.contains_rect region r
  in
  ok rects.(a) && ok rects.(b)
  && Geometry.overlap_area rects.(a) rects.(b) <= 1e-9
  && List.for_all
       (fun other ->
         other = a || other = b
         || (Geometry.overlap_area rects.(other) rects.(a) <= 1e-9
             && Geometry.overlap_area rects.(other) rects.(b) <= 1e-9))
       members

let improve ?(seed = 0) ?(schedule = default_schedule) soc vi plan =
  let state = Random.State.make [| seed; 0xF100; schedule.iterations |] in
  let rects = Array.copy plan.Placer.core_rects in
  let per_core = flows_touching soc in
  let islands_with_pairs =
    List.filter
      (fun isl -> List.length (Vi.cores_of_island vi isl) >= 2)
      (List.init vi.Vi.islands (fun i -> i))
  in
  if islands_with_pairs = [] then plan
  else begin
    let island_members =
      Array.init vi.Vi.islands (fun isl ->
          Array.of_list (Vi.cores_of_island vi isl))
    in
    let islands = Array.of_list islands_with_pairs in
    let total0 = Placer.wirelength soc plan in
    let scale = if total0 > 0.0 then total0 else 1.0 in
    let best = ref (Array.copy rects) in
    let best_cost = ref total0 in
    let current_cost = ref total0 in
    let temperature = ref schedule.start_temperature in
    for _ = 1 to schedule.iterations do
      let isl = islands.(Random.State.int state (Array.length islands)) in
      let members = island_members.(isl) in
      let m = Array.length members in
      let a = members.(Random.State.int state m) in
      let b = members.(Random.State.int state m) in
      if a <> b then begin
        let region = plan.Placer.island_rects.(isl) in
        let old_a = rects.(a) and old_b = rects.(b) in
        let before = pair_cost rects per_core a b in
        rects.(a) <- recenter region old_a (Geometry.center old_b);
        rects.(b) <- recenter region old_b (Geometry.center old_a);
        let members_list = Array.to_list members in
        if not (legal_in_island rects members_list region a b) then begin
          rects.(a) <- old_a;
          rects.(b) <- old_b
        end
        else begin
          let after = pair_cost rects per_core a b in
          let delta = (after -. before) /. scale in
          let accept =
            delta <= 0.0
            || Random.State.float state 1.0 < exp (-.delta /. !temperature)
          in
          if accept then begin
            current_cost := !current_cost +. (after -. before);
            if !current_cost < !best_cost then begin
              best_cost := !current_cost;
              best := Array.copy rects
            end
          end
          else begin
            rects.(a) <- old_a;
            rects.(b) <- old_b
          end
        end
      end;
      temperature := Float.max 1e-6 (!temperature *. schedule.cooling)
    done;
    { plan with Placer.core_rects = !best }
  end
