(** Plain 2-D geometry for the floorplanner (units: mm). *)

type point = { x : float; y : float }

type rect = { rx : float; ry : float; rw : float; rh : float }
(** Axis-aligned rectangle anchored at its lower-left corner. *)

val point : float -> float -> point
val rect : x:float -> y:float -> w:float -> h:float -> rect
(** @raise Invalid_argument on negative width/height. *)

val center : rect -> point
val area : rect -> float
val manhattan : point -> point -> float
val contains : rect -> point -> bool
(** Closed on all sides. *)

val contains_rect : rect -> rect -> bool
val overlap_area : rect -> rect -> float
(** Area of the intersection, [0.] for disjoint rectangles; rectangles that
    merely share an edge do not overlap. *)

val clamp_point : rect -> point -> point
(** Nearest point of the rectangle. *)

val inset : rect -> float -> rect
(** Shrink by a margin on every side (clamped to a degenerate
    center rectangle when the margin is too large). *)

val pp_point : Format.formatter -> point -> unit
val pp_rect : Format.formatter -> rect -> unit
