lib/core/synth.ml: Array Config Design_point Freq_assign List Logs Noc_floorplan Noc_models Noc_spec Path_alloc Printf Switch_alloc
