lib/core/switch_alloc.mli: Config Freq_assign Noc_floorplan Noc_spec Topology
