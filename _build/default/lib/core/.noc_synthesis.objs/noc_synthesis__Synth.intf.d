lib/core/synth.mli: Config Design_point Freq_assign Noc_floorplan Noc_spec Switch_alloc
