lib/core/config.ml: Noc_models Printf
