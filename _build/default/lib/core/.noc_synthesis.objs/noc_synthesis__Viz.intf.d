lib/core/viz.mli: Noc_floorplan Noc_spec Topology
