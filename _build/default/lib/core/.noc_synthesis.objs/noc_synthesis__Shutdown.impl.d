lib/core/shutdown.ml: Array Config Design_point Float Format List Noc_models Noc_spec Topology
