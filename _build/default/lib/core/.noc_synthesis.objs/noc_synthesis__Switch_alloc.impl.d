lib/core/switch_alloc.ml: Array Float Freq_assign List Noc_floorplan Noc_partition Noc_spec Printf Topology
