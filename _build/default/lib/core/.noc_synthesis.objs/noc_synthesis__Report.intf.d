lib/core/report.mli: Config Design_point Format Noc_spec Topology
