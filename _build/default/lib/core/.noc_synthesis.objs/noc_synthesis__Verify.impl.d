lib/core/verify.ml: Array Config Float Format Freq_assign Hashtbl Lazy List Noc_models Noc_spec Topology
