lib/core/design_point.mli: Config Format Freq_assign Noc_models Noc_spec Topology
