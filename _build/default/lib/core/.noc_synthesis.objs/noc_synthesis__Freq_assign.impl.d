lib/core/freq_assign.ml: Array Config Float List Noc_models Noc_spec Printf
