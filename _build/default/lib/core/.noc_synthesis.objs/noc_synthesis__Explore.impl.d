lib/core/explore.ml: Config Design_point Float Freq_assign List Noc_models Noc_spec Printf Shutdown Synth
