lib/core/shutdown.mli: Config Design_point Format Noc_spec Topology
