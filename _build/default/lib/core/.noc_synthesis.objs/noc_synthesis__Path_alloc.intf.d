lib/core/path_alloc.mli: Config Format Freq_assign Noc_spec Topology
