lib/core/config.mli: Noc_models
