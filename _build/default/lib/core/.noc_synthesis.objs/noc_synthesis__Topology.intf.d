lib/core/topology.mli: Format Hashtbl Noc_floorplan Noc_spec
