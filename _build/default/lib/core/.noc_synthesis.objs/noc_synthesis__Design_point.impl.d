lib/core/design_point.ml: Array Config Float Format Freq_assign Hashtbl List Noc_models Noc_spec Printf Topology
