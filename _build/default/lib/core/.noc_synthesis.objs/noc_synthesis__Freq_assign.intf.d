lib/core/freq_assign.mli: Config Noc_spec
