lib/core/baseline.ml: Design_point Format Noc_models Noc_spec Synth
