lib/core/verify.mli: Config Format Noc_spec Topology
