lib/core/path_alloc.ml: Array Config Float Format Freq_assign Lazy List Noc_floorplan Noc_graph Noc_models Noc_spec Topology
