lib/core/baseline.mli: Config Design_point Format Noc_spec Synth
