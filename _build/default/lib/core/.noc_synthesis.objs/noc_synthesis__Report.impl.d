lib/core/report.ml: Array Config Design_point Float Format List Noc_floorplan Noc_models Noc_spec Printf Shutdown Topology
