lib/core/explore.mli: Config Design_point Noc_spec Synth
