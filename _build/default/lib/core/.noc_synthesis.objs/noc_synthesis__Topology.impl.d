lib/core/topology.ml: Array Buffer Format Hashtbl List Noc_floorplan Noc_models Noc_spec Printf Seq
