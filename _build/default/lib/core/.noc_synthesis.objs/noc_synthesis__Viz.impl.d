lib/core/viz.ml: Array List Noc_floorplan Printf Topology
