(** Visualization of synthesized designs: the floorplan with the NoC
    overlaid — switches at their placed positions, NI attachments, and
    inter-switch links (converter-carrying crossings dashed red).  The
    graphical counterpart of the paper's Figs. 4 and 5 in one picture. *)

val design_svg :
  Noc_spec.Soc_spec.t ->
  Noc_spec.Vi.t ->
  Noc_floorplan.Placer.plan ->
  Topology.t ->
  string
(** Complete SVG document. *)

val save_design_svg :
  path:string ->
  Noc_spec.Soc_spec.t ->
  Noc_spec.Vi.t ->
  Noc_floorplan.Placer.plan ->
  Topology.t ->
  unit
(** Write {!design_svg} to a file.
    @raise Sys_error on I/O failure. *)
