module Svg = Noc_floorplan.Svg
module Wiring = Noc_floorplan.Wiring

let design_svg soc vi plan topo =
  let c = Svg.plan_canvas soc vi plan in
  (* links first so switches draw on top of them *)
  List.iter
    (fun link ->
      let a = topo.Topology.switches.(link.Topology.link_src).Topology.position in
      let b = topo.Topology.switches.(link.Topology.link_dst).Topology.position in
      if link.Topology.crossing then
        Svg.line c a b ~stroke:"#c62828" ~width:2.0 ~dashed:true ()
      else Svg.line c a b ~stroke:"#1565c0" ~width:2.0 ())
    (Topology.links_list topo);
  (* NI attachment stubs *)
  Array.iteri
    (fun core sw ->
      let ni = Wiring.ni_position plan ~core in
      Svg.line c ni topo.Topology.switches.(sw).Topology.position
        ~stroke:"#9e9e9e" ~width:0.8 ~dashed:true ())
    topo.Topology.core_switch;
  Array.iter
    (fun sw ->
      let fill =
        match sw.Topology.location with
        | Topology.Intermediate -> "#616161"
        | Topology.Island isl -> Svg.island_color isl
      in
      Svg.circle c sw.Topology.position ~r_mm:0.16 ~fill;
      Svg.text c sw.Topology.position ~size_mm:0.18
        (Printf.sprintf "s%d" sw.Topology.sw_id))
    topo.Topology.switches;
  Svg.render c

let save_design_svg ~path soc vi plan topo =
  let oc = open_out path in
  output_string oc (design_svg soc vi plan topo);
  close_out oc
