(** Step 15 of Algorithm 1: least-cost path computation for every flow, in
    decreasing bandwidth order.

    The cost of a hop is a linear combination ([Config.beta]) of the power
    increase of opening/reusing the link and of the hop's latency relative
    to the flow's constraint.  Opening rules enforce shutdown safety by
    construction: a new inter-switch link is legal only inside one island,
    directly from the flow's source island to its destination island, or
    to/from/inside the always-on intermediate NoC VI — never through a
    third shutdownable island.

    If the cheapest path of a flow busts its latency constraint, the flow is
    retried with a pure-latency cost; if that still fails, the whole
    candidate is rejected (the paper only saves design points where "paths
    found for all flows"). *)

type error = {
  flow : Noc_spec.Flow.t;
  reason : [ `No_path | `Latency of int (** cycles over budget *) ];
}

val route_all :
  ?priority:(int * int) list ->
  Config.t ->
  Noc_spec.Soc_spec.t ->
  Noc_spec.Vi.t ->
  Topology.t ->
  clocks:Freq_assign.island_clock array ->
  (unit, error) result
(** Mutates the topology: creates links and commits all routes on success.
    On error the topology must be discarded (links of already-routed flows
    remain).  Flows are processed in decreasing bandwidth order, ties broken
    by (src, dst) for determinism — except that flows whose [(src, dst)]
    appears in [priority] are routed first, in [priority] order.  The
    synthesis sweep uses this for rip-up-style retries: a flow starved of
    ports or capacity by earlier flows gets first pick on a fresh
    topology. *)

val pp_error : Format.formatter -> error -> unit
