(** A fully evaluated design point: one entry of the trade-off curves the
    synthesis produces (paper §3.2, and the y-axes of Figs. 2 and 3). *)

type area = {
  switch_mm2 : float;
  ni_mm2 : float;
  sync_mm2 : float;
  link_mm2 : float;
}

type t = {
  topology : Topology.t;
  clocks : Freq_assign.island_clock array;
  power : Noc_models.Power.t;     (** NoC power, dynamic + leakage by class *)
  area : area;
  avg_latency_cycles : float;     (** zero-load, Fig. 3 convention *)
  worst_latency_slack : int;
      (** min over flows of (constraint − route latency); ≥ 0 on any point
          the synthesis saves *)
  switch_count : int;             (** direct switches *)
  indirect_count : int;
  link_count : int;
  crossing_count : int;           (** inter-island links (converter count) *)
  total_wire_mm : float;
  timing_clean : bool;
      (** every link closes single-cycle timing at its driving clock *)
}

val total_area_mm2 : area -> float

val evaluate :
  Config.t ->
  Noc_spec.Soc_spec.t ->
  Topology.t ->
  clocks:Freq_assign.island_clock array ->
  t
(** Walk every committed route and charge NI, switch, link and converter
    energy at each component's supply; add leakage and area for every
    instantiated component.
    @raise Invalid_argument if not all of the spec's flows are routed. *)

val pp_summary : Format.formatter -> t -> unit
