(** Description of one SoC core (IP block) as consumed by the synthesis
    flow: identity, geometry and its own power figures.  Core power enters
    the evaluation only to express the NoC overhead as a fraction of
    {e system} power/area, the statistic the paper reports (§5). *)

type kind =
  | Processor
  | Dsp
  | Cache
  | Memory
  | Dma
  | Accelerator   (** video/imaging engines and similar *)
  | Io
  | Peripheral

type t = {
  id : int;              (** dense index in the SoC core table *)
  name : string;
  kind : kind;
  area_mm2 : float;
  freq_mhz : float;      (** the core's own clock *)
  dynamic_mw : float;    (** core dynamic power when active *)
  leakage_mw : float;    (** core leakage when its island is powered *)
}

val make :
  id:int ->
  name:string ->
  kind:kind ->
  area_mm2:float ->
  freq_mhz:float ->
  dynamic_mw:float ->
  ?leakage_mw:float ->
  unit ->
  t
(** [leakage_mw] defaults to the 65 nm leakage density times the core area.
    @raise Invalid_argument on negative area/frequency/power or id. *)

val kind_to_string : kind -> string

val kind_of_string : string -> kind option
(** Inverse of {!kind_to_string}; [None] on unknown names. *)

val all_kinds : kind list

val pp : Format.formatter -> t -> unit
