type t = {
  src : int;
  dst : int;
  bandwidth_mbps : float;
  max_latency_cycles : int;
}

let make ~src ~dst ~bw ~lat =
  if src < 0 || dst < 0 then invalid_arg "Flow.make: negative core id";
  if src = dst then invalid_arg "Flow.make: self flow";
  if bw <= 0.0 then invalid_arg "Flow.make: non-positive bandwidth";
  if lat <= 0 then invalid_arg "Flow.make: non-positive latency constraint";
  { src; dst; bandwidth_mbps = bw; max_latency_cycles = lat }

let max_bandwidth flows =
  List.fold_left (fun acc f -> Float.max acc f.bandwidth_mbps) 0.0 flows

let min_latency flows =
  match flows with
  | [] -> invalid_arg "Flow.min_latency: empty flow list"
  | first :: rest ->
    List.fold_left
      (fun acc f -> min acc f.max_latency_cycles)
      first.max_latency_cycles rest

let weight ~alpha ~max_bw ~min_lat f =
  if alpha < 0.0 || alpha > 1.0 then invalid_arg "Flow.weight: alpha not in [0,1]";
  if max_bw <= 0.0 then invalid_arg "Flow.weight: max_bw <= 0";
  let bw_term = f.bandwidth_mbps /. max_bw in
  let lat_term = float_of_int min_lat /. float_of_int f.max_latency_cycles in
  (alpha *. bw_term) +. ((1.0 -. alpha) *. lat_term)

let pp ppf f =
  Format.fprintf ppf "%d->%d %.0fMB/s lat<=%d" f.src f.dst f.bandwidth_mbps
    f.max_latency_cycles
