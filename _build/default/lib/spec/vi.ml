type t = {
  islands : int;
  of_core : int array;
  shutdownable : bool array;
}

let make ~islands ~of_core ?shutdownable () =
  if islands < 1 then invalid_arg "Vi.make: islands < 1";
  let shutdownable =
    match shutdownable with
    | Some s ->
      if Array.length s <> islands then
        invalid_arg "Vi.make: shutdownable length mismatch";
      Array.copy s
    | None -> Array.make islands true
  in
  let populated = Array.make islands false in
  Array.iteri
    (fun core isl ->
      if isl < 0 || isl >= islands then
        invalid_arg
          (Printf.sprintf "Vi.make: core %d assigned to island %d (of %d)"
             core isl islands);
      populated.(isl) <- true)
    of_core;
  Array.iteri
    (fun isl p ->
      if not p then
        invalid_arg (Printf.sprintf "Vi.make: island %d has no core" isl))
    populated;
  { islands; of_core = Array.copy of_core; shutdownable }

let single_island ~cores =
  if cores < 1 then invalid_arg "Vi.single_island: cores < 1";
  make ~islands:1 ~of_core:(Array.make cores 0)
    ~shutdownable:[| false |] ()

let per_core_islands ~cores =
  if cores < 1 then invalid_arg "Vi.per_core_islands: cores < 1";
  make ~islands:cores ~of_core:(Array.init cores (fun i -> i)) ()

let cores_of_island t isl =
  if isl < 0 || isl >= t.islands then
    invalid_arg "Vi.cores_of_island: bad island id";
  let members = ref [] in
  for core = Array.length t.of_core - 1 downto 0 do
    if t.of_core.(core) = isl then members := core :: !members
  done;
  !members

let island_sizes t =
  let sizes = Array.make t.islands 0 in
  Array.iter (fun isl -> sizes.(isl) <- sizes.(isl) + 1) t.of_core;
  sizes

let crossings t flows =
  List.length
    (List.filter
       (fun f -> t.of_core.(f.Flow.src) <> t.of_core.(f.Flow.dst))
       flows)

let crossing_bandwidth t flows =
  List.fold_left
    (fun acc f ->
      if t.of_core.(f.Flow.src) <> t.of_core.(f.Flow.dst) then
        acc +. f.Flow.bandwidth_mbps
      else acc)
    0.0 flows

let pp ppf t =
  Format.fprintf ppf "@[<v>%d islands:" t.islands;
  for isl = 0 to t.islands - 1 do
    Format.fprintf ppf "@,  VI%d%s: cores %a" isl
      (if t.shutdownable.(isl) then "" else " (always-on)")
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         Format.pp_print_int)
      (cores_of_island t isl)
  done;
  Format.fprintf ppf "@]"
