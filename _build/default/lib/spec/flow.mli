(** One traffic flow of the application communication graph: a directed
    core-to-core stream with a bandwidth requirement and a zero-load latency
    constraint (Definition 1 of the paper). *)

type t = {
  src : int;               (** source core id *)
  dst : int;               (** destination core id *)
  bandwidth_mbps : float;  (** sustained requirement, MB/s *)
  max_latency_cycles : int;
      (** tightest acceptable zero-load latency, in cycles of the flow's
          reference NoC clock *)
}

val make : src:int -> dst:int -> bw:float -> lat:int -> t
(** @raise Invalid_argument on self-flow, negative ids, non-positive
    bandwidth or latency. *)

val max_bandwidth : t list -> float
(** Largest bandwidth over the flows ([max_bw] in Definition 1);
    [0.] for an empty list. *)

val min_latency : t list -> int
(** Tightest latency constraint over the flows ([min_lat] in Definition 1).
    @raise Invalid_argument on an empty list. *)

val weight : alpha:float -> max_bw:float -> min_lat:int -> t -> float
(** The paper's edge weight
    [h = alpha * bw/max_bw + (1-alpha) * min_lat/lat].
    @raise Invalid_argument if [alpha] is outside [0, 1] or [max_bw <= 0]. *)

val pp : Format.formatter -> t -> unit
