type t = {
  name : string;
  used_cores : bool array;
  duty : float;
}

let make ~name ~used ~cores ~duty =
  if cores < 1 then invalid_arg "Scenario.make: cores < 1";
  if duty < 0.0 || duty > 1.0 then invalid_arg "Scenario.make: duty not in [0,1]";
  if used = [] then invalid_arg "Scenario.make: no used core";
  let used_cores = Array.make cores false in
  List.iter
    (fun c ->
      if c < 0 || c >= cores then
        invalid_arg (Printf.sprintf "Scenario.make: core %d out of range" c);
      if used_cores.(c) then
        invalid_arg (Printf.sprintf "Scenario.make: core %d listed twice" c);
      used_cores.(c) <- true)
    used;
  { name; used_cores; duty }

let island_active t vi isl =
  if isl < 0 || isl >= vi.Vi.islands then
    invalid_arg "Scenario.island_active: bad island";
  if Array.length t.used_cores <> Array.length vi.Vi.of_core then
    invalid_arg "Scenario.island_active: core count mismatch";
  let active = ref false in
  Array.iteri
    (fun core used -> if used && vi.Vi.of_core.(core) = isl then active := true)
    t.used_cores;
  !active

let gated_islands t vi =
  let rec collect isl acc =
    if isl < 0 then acc
    else begin
      let gated =
        vi.Vi.shutdownable.(isl) && not (island_active t vi isl)
      in
      collect (isl - 1) (if gated then isl :: acc else acc)
    end
  in
  collect (vi.Vi.islands - 1) []

let validate_duties scenarios =
  let total = List.fold_left (fun acc s -> acc +. s.duty) 0.0 scenarios in
  if total > 1.0 +. 1e-9 then
    invalid_arg
      (Printf.sprintf "Scenario.validate_duties: duties sum to %g > 1" total)

let pp ppf t =
  let used = ref [] in
  Array.iteri (fun c u -> if u then used := c :: !used) t.used_cores;
  Format.fprintf ppf "scenario %s (duty %.0f%%): cores %a" t.name
    (100.0 *. t.duty)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (List.rev !used)
