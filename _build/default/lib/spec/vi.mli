(** Voltage-island assignment of cores.

    The assignment of cores to VIs is an {e input} to the synthesis
    algorithm (paper §3.1): logical partitioning comes from the designer,
    communication-based partitioning from {!Noc_partition.Cluster}.  Islands
    may individually be marked non-shutdownable (e.g. the shared-memory
    island that must stay reachable at all times, §5). *)

type t = {
  islands : int;               (** number of islands, ids [0 .. islands-1] *)
  of_core : int array;         (** island of each core *)
  shutdownable : bool array;   (** per island; length [islands] *)
}

val make : islands:int -> of_core:int array -> ?shutdownable:bool array -> unit -> t
(** [shutdownable] defaults to all-[true].
    @raise Invalid_argument if a core maps outside [0 .. islands-1], if some
    island has no core, or if array lengths disagree. *)

val single_island : cores:int -> t
(** Everything in one island — the paper's 1-island reference design point
    (the island is marked non-shutdownable: it holds the whole system). *)

val per_core_islands : cores:int -> t
(** One island per core (the paper's 26-island extreme in Fig. 2/3). *)

val cores_of_island : t -> int -> int list
(** Core ids of an island, increasing.
    @raise Invalid_argument on a bad island id. *)

val island_sizes : t -> int array

val crossings : t -> Flow.t list -> int
(** Number of flows whose endpoints sit in different islands. *)

val crossing_bandwidth : t -> Flow.t list -> float
(** Total bandwidth (MB/s) of island-crossing flows — the quantity logical
    partitioning pays for in Fig. 2. *)

val pp : Format.formatter -> t -> unit
