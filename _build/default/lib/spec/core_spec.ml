type kind =
  | Processor
  | Dsp
  | Cache
  | Memory
  | Dma
  | Accelerator
  | Io
  | Peripheral

type t = {
  id : int;
  name : string;
  kind : kind;
  area_mm2 : float;
  freq_mhz : float;
  dynamic_mw : float;
  leakage_mw : float;
}

let make ~id ~name ~kind ~area_mm2 ~freq_mhz ~dynamic_mw ?leakage_mw () =
  if id < 0 then invalid_arg "Core_spec.make: negative id";
  if area_mm2 <= 0.0 then invalid_arg "Core_spec.make: non-positive area";
  if freq_mhz <= 0.0 then invalid_arg "Core_spec.make: non-positive frequency";
  if dynamic_mw < 0.0 then invalid_arg "Core_spec.make: negative dynamic power";
  let leakage_mw =
    match leakage_mw with
    | Some l ->
      if l < 0.0 then invalid_arg "Core_spec.make: negative leakage";
      l
    | None ->
      area_mm2 *. Noc_models.Tech.default_65nm.Noc_models.Tech.leakage_mw_per_mm2
  in
  { id; name; kind; area_mm2; freq_mhz; dynamic_mw; leakage_mw }

let kind_to_string = function
  | Processor -> "processor"
  | Dsp -> "dsp"
  | Cache -> "cache"
  | Memory -> "memory"
  | Dma -> "dma"
  | Accelerator -> "accelerator"
  | Io -> "io"
  | Peripheral -> "peripheral"

let all_kinds =
  [ Processor; Dsp; Cache; Memory; Dma; Accelerator; Io; Peripheral ]

let kind_of_string s =
  List.find_opt (fun k -> kind_to_string k = s) all_kinds

let pp ppf c =
  Format.fprintf ppf "#%d %s (%s, %.2f mm2, %g MHz, %g/%g mW dyn/leak)" c.id
    c.name (kind_to_string c.kind) c.area_mm2 c.freq_mhz c.dynamic_mw
    c.leakage_mw
