(** Usage scenarios for the shutdown analysis.

    A scenario names the set of cores an application mode actually uses and
    the fraction of time the SoC spends in that mode.  An island can be
    gated in a scenario iff it is marked shutdownable and none of its cores
    is used — this is where the leakage savings the paper motivates (§1, §5:
    "even 25% or more reduction in overall system power") come from. *)

type t = {
  name : string;
  used_cores : bool array;  (** length = core count *)
  duty : float;             (** fraction of time in this mode, [0..1] *)
}

val make : name:string -> used:int list -> cores:int -> duty:float -> t
(** [used] lists the core ids active in this mode.
    @raise Invalid_argument on out-of-range ids, duplicates, empty [used]
    or duty outside [0,1]. *)

val island_active : t -> Vi.t -> int -> bool
(** Is some used core inside the island? *)

val gated_islands : t -> Vi.t -> int list
(** Islands that can be shut down in this scenario: shutdownable and with no
    used core. *)

val validate_duties : t list -> unit
(** @raise Invalid_argument if duties sum to more than 1 (+ small epsilon).
    A slack below 1 is allowed: the remainder is full-power operation. *)

val pp : Format.formatter -> t -> unit
