(** Full SoC input specification: the core table plus the application's
    communication graph, together with the knobs the paper takes as input
    (link data width, availability of rails for an intermediate NoC VI). *)

type t = {
  name : string;
  cores : Core_spec.t array;       (** indexed by core id *)
  flows : Flow.t list;
  flit_bits : int;                 (** user-fixed link data width (paper §4) *)
  allow_intermediate_island : bool;
      (** are power/ground rails available for a separate always-on NoC VI?
          (paper §3.2 treats this as an input) *)
}

val make :
  name:string ->
  cores:Core_spec.t array ->
  flows:Flow.t list ->
  ?flit_bits:int ->
  ?allow_intermediate_island:bool ->
  unit ->
  t
(** Validates: core ids are exactly [0 .. n-1] in order, flow endpoints are
    valid core ids, no duplicate directed flow between the same pair (merge
    them upstream instead).  [flit_bits] defaults to 32,
    [allow_intermediate_island] to [true].
    @raise Invalid_argument on any violation. *)

val core_count : t -> int

val bandwidth_graph : t -> Noc_graph.Digraph.t
(** Directed graph over cores whose edge weights are flow bandwidths
    (MB/s). *)

val flows_between : t -> src_island:int -> dst_island:int -> vi:Vi.t -> Flow.t list
(** Flows going from a core of [src_island] to a core of [dst_island]. *)

val total_core_area_mm2 : t -> float
val total_core_dynamic_mw : t -> float
val total_core_leakage_mw : t -> float

val max_core_bandwidth_mbps : t -> int -> float
(** Largest single-flow bandwidth entering or leaving the given core: the
    hottest NI link of that core, which drives its island's NoC frequency
    (Algorithm 1 step 1). *)

val pp : Format.formatter -> t -> unit
