type t = {
  name : string;
  cores : Core_spec.t array;
  flows : Flow.t list;
  flit_bits : int;
  allow_intermediate_island : bool;
}

let make ~name ~cores ~flows ?(flit_bits = 32) ?(allow_intermediate_island = true)
    () =
  if Array.length cores = 0 then invalid_arg "Soc_spec.make: no cores";
  if flit_bits <= 0 then invalid_arg "Soc_spec.make: flit_bits <= 0";
  Array.iteri
    (fun i c ->
      if c.Core_spec.id <> i then
        invalid_arg
          (Printf.sprintf "Soc_spec.make: core at index %d has id %d" i
             c.Core_spec.id))
    cores;
  let n = Array.length cores in
  let seen = Hashtbl.create (List.length flows) in
  List.iter
    (fun f ->
      if f.Flow.src >= n || f.Flow.dst >= n then
        invalid_arg
          (Printf.sprintf "Soc_spec.make: flow %d->%d references unknown core"
             f.Flow.src f.Flow.dst);
      let key = (f.Flow.src, f.Flow.dst) in
      if Hashtbl.mem seen key then
        invalid_arg
          (Printf.sprintf "Soc_spec.make: duplicate flow %d->%d" f.Flow.src
             f.Flow.dst);
      Hashtbl.replace seen key ())
    flows;
  { name; cores; flows; flit_bits; allow_intermediate_island }

let core_count t = Array.length t.cores

let bandwidth_graph t =
  let g = Noc_graph.Digraph.create (core_count t) in
  List.iter
    (fun f ->
      Noc_graph.Digraph.add_to_edge g f.Flow.src f.Flow.dst
        f.Flow.bandwidth_mbps)
    t.flows;
  g

let flows_between t ~src_island ~dst_island ~vi =
  List.filter
    (fun f ->
      vi.Vi.of_core.(f.Flow.src) = src_island
      && vi.Vi.of_core.(f.Flow.dst) = dst_island)
    t.flows

let total_core_area_mm2 t =
  Array.fold_left (fun acc c -> acc +. c.Core_spec.area_mm2) 0.0 t.cores

let total_core_dynamic_mw t =
  Array.fold_left (fun acc c -> acc +. c.Core_spec.dynamic_mw) 0.0 t.cores

let total_core_leakage_mw t =
  Array.fold_left (fun acc c -> acc +. c.Core_spec.leakage_mw) 0.0 t.cores

let max_core_bandwidth_mbps t core =
  if core < 0 || core >= core_count t then
    invalid_arg "Soc_spec.max_core_bandwidth_mbps: bad core id";
  List.fold_left
    (fun acc f ->
      if f.Flow.src = core || f.Flow.dst = core then
        Float.max acc f.Flow.bandwidth_mbps
      else acc)
    0.0 t.flows

let pp ppf t =
  Format.fprintf ppf "@[<v>SoC %s: %d cores, %d flows, %d-bit links%s@,"
    t.name (core_count t) (List.length t.flows) t.flit_bits
    (if t.allow_intermediate_island then "" else " (no intermediate VI rails)");
  Array.iter (fun c -> Format.fprintf ppf "  %a@," Core_spec.pp c) t.cores;
  List.iter (fun f -> Format.fprintf ppf "  %a@," Flow.pp f) t.flows;
  Format.fprintf ppf "@]"
