(** The VI Communication Graph of the paper's Definition 1.

    For an island [isl], [VCG(V, E, isl)] has one vertex per core of the
    island and an edge per traffic flow between two of its cores, weighted
    [h_ij = alpha * bw_ij / max_bw + (1 - alpha) * min_lat / lat_ij] where
    [max_bw] is the largest bandwidth over {e all} flows of the SoC and
    [min_lat] the tightest latency constraint over all flows.  Min-cut
    partitioning this graph groups heavily-communicating / latency-critical
    cores on the same switch (Algorithm 1 step 11). *)

type t = {
  island : int;
  graph : Noc_graph.Ugraph.t;
      (** undirected affinity graph over local indices; antiparallel flow
          pairs accumulate *)
  cores : int array;  (** [cores.(local)] = global core id *)
  local_of_core : (int, int) Hashtbl.t;
}

val build : alpha:float -> Soc_spec.t -> Vi.t -> island:int -> t
(** @raise Invalid_argument if [alpha] is outside [0,1] or the island id is
    bad.  An island whose cores never talk to each other yields an edgeless
    graph (still partitionable). *)

val build_all : alpha:float -> Soc_spec.t -> Vi.t -> t array
(** One VCG per island, indexed by island id. *)

val size : t -> int
(** Number of cores in the island ([|VCG|] in Algorithm 1 step 2). *)
