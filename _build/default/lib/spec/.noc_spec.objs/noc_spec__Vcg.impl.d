lib/spec/vcg.ml: Array Flow Hashtbl List Noc_graph Soc_spec Vi
