lib/spec/soc_spec.mli: Core_spec Flow Format Noc_graph Vi
