lib/spec/spec_io.mli: Scenario Soc_spec Vi
