lib/spec/scenario.ml: Array Format List Printf Vi
