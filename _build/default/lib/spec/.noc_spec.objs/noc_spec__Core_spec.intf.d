lib/spec/core_spec.mli: Format
