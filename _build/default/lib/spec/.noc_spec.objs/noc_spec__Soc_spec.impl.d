lib/spec/soc_spec.ml: Array Core_spec Float Flow Format Hashtbl List Noc_graph Printf Vi
