lib/spec/flow.mli: Format
