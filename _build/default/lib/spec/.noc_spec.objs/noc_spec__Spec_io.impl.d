lib/spec/spec_io.ml: Array Buffer Core_spec Float Flow List Printf Scenario Soc_spec String Vi
