lib/spec/scenario.mli: Format Vi
