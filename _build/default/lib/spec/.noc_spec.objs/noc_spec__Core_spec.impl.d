lib/spec/core_spec.ml: Format List Noc_models
