lib/spec/vi.ml: Array Flow Format List Printf
