lib/spec/traffic_stats.mli: Format Soc_spec Vi
