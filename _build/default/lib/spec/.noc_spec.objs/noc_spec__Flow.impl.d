lib/spec/flow.ml: Float Format List
