lib/spec/traffic_stats.ml: Array Flow Format Hashtbl List Noc_graph Soc_spec Vi
