lib/spec/vcg.mli: Hashtbl Noc_graph Soc_spec Vi
