lib/spec/vi.mli: Flow Format
