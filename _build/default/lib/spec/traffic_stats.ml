type t = {
  flow_count : int;
  total_bandwidth_mbps : float;
  max_bandwidth_mbps : float;
  median_bandwidth_mbps : float;
  hub_core : int;
  hub_fraction : float;
  gini : float;
  avg_fanout : float;
  tightest_latency_cycles : int;
  connected : bool;
}

let gini_of sorted_ascending =
  (* standard formula on a sorted sample: G = (2 sum(i*x_i)/(n*sum) ) -
     (n+1)/n with 1-based i *)
  let n = Array.length sorted_ascending in
  let total = Array.fold_left ( +. ) 0.0 sorted_ascending in
  if n = 0 || total <= 0.0 then 0.0
  else begin
    let weighted = ref 0.0 in
    Array.iteri
      (fun i x -> weighted := !weighted +. (float_of_int (i + 1) *. x))
      sorted_ascending;
    (2.0 *. !weighted /. (float_of_int n *. total))
    -. ((float_of_int n +. 1.0) /. float_of_int n)
  end

let analyze soc =
  let flows = soc.Soc_spec.flows in
  if flows = [] then invalid_arg "Traffic_stats.analyze: no flows";
  let n = Soc_spec.core_count soc in
  let bandwidths =
    Array.of_list (List.map (fun f -> f.Flow.bandwidth_mbps) flows)
  in
  Array.sort compare bandwidths;
  let flow_count = Array.length bandwidths in
  let total = Array.fold_left ( +. ) 0.0 bandwidths in
  let median =
    if flow_count mod 2 = 1 then bandwidths.(flow_count / 2)
    else
      (bandwidths.((flow_count / 2) - 1) +. bandwidths.(flow_count / 2)) /. 2.0
  in
  let touching = Array.make n 0.0 in
  let fanout = Array.make n 0 in
  let seen_dst = Hashtbl.create 64 in
  List.iter
    (fun f ->
      touching.(f.Flow.src) <- touching.(f.Flow.src) +. f.Flow.bandwidth_mbps;
      touching.(f.Flow.dst) <- touching.(f.Flow.dst) +. f.Flow.bandwidth_mbps;
      if not (Hashtbl.mem seen_dst (f.Flow.src, f.Flow.dst)) then begin
        Hashtbl.replace seen_dst (f.Flow.src, f.Flow.dst) ();
        fanout.(f.Flow.src) <- fanout.(f.Flow.src) + 1
      end)
    flows;
  let hub_core = ref 0 in
  Array.iteri
    (fun core bw -> if bw > touching.(!hub_core) then hub_core := core)
    touching;
  let sources = Array.fold_left (fun acc k -> if k > 0 then acc + 1 else acc) 0 fanout in
  let avg_fanout =
    if sources = 0 then 0.0
    else
      float_of_int (Array.fold_left ( + ) 0 fanout) /. float_of_int sources
  in
  let undirected = Noc_graph.Ugraph.of_digraph (Soc_spec.bandwidth_graph soc) in
  {
    flow_count;
    total_bandwidth_mbps = total;
    max_bandwidth_mbps = bandwidths.(flow_count - 1);
    median_bandwidth_mbps = median;
    hub_core = !hub_core;
    hub_fraction = (if total > 0.0 then touching.(!hub_core) /. total else 0.0);
    gini = gini_of bandwidths;
    avg_fanout;
    tightest_latency_cycles = Flow.min_latency flows;
    connected = Noc_graph.Traversal.is_connected undirected;
  }

let pp ppf s =
  Format.fprintf ppf
    "@[<v>traffic: %d flows, %.1f GB/s total (max %.0f, median %.0f MB/s)@,\
     hub: core %d touches %.0f%% of all bandwidth; avg fan-out %.1f@,\
     bandwidth Gini %.2f; tightest latency %d cycles; graph %s@]"
    s.flow_count
    (s.total_bandwidth_mbps /. 1000.0)
    s.max_bandwidth_mbps s.median_bandwidth_mbps s.hub_core
    (100.0 *. s.hub_fraction)
    s.avg_fanout s.gini s.tightest_latency_cycles
    (if s.connected then "connected" else "DISCONNECTED")

let intra_island_fraction soc vi =
  let total =
    List.fold_left
      (fun acc f -> acc +. f.Flow.bandwidth_mbps)
      0.0 soc.Soc_spec.flows
  in
  if total <= 0.0 then 1.0
  else 1.0 -. (Vi.crossing_bandwidth vi soc.Soc_spec.flows /. total)
