(** Descriptive statistics of a SoC's communication graph.

    Used to audit that synthetic benchmarks look like real MPSoC traffic
    (hub-dominated, heavy-tailed bandwidths, latency-stratified) and by the
    documentation/examples to characterize inputs before synthesis. *)

type t = {
  flow_count : int;
  total_bandwidth_mbps : float;
  max_bandwidth_mbps : float;
  median_bandwidth_mbps : float;
  hub_core : int;            (** core touching the most flow bandwidth *)
  hub_fraction : float;      (** share of total bandwidth touching the hub *)
  gini : float;
      (** Gini coefficient of the flow bandwidth distribution: 0 = all
          flows equal, →1 = one flow dominates.  Real SoC traffic is
          heavy-tailed (≳0.5). *)
  avg_fanout : float;        (** mean distinct destinations per active source *)
  tightest_latency_cycles : int;
  connected : bool;
      (** is the communication graph (undirected) one component?  A
          disconnected spec usually means a forgotten control flow. *)
}

val analyze : Soc_spec.t -> t
(** @raise Invalid_argument if the spec has no flows. *)

val pp : Format.formatter -> t -> unit

val intra_island_fraction : Soc_spec.t -> Vi.t -> float
(** Share of total bandwidth whose endpoints share an island — the quantity
    communication-based partitioning maximizes (1 − the normalized crossing
    bandwidth of Fig. 2's discussion). *)
