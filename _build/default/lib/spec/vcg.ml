module Ugraph = Noc_graph.Ugraph

type t = {
  island : int;
  graph : Ugraph.t;
  cores : int array;
  local_of_core : (int, int) Hashtbl.t;
}

let build ~alpha soc vi ~island =
  if alpha < 0.0 || alpha > 1.0 then invalid_arg "Vcg.build: alpha not in [0,1]";
  if island < 0 || island >= vi.Vi.islands then
    invalid_arg "Vcg.build: bad island id";
  let cores = Array.of_list (Vi.cores_of_island vi island) in
  let local_of_core = Hashtbl.create (Array.length cores) in
  Array.iteri (fun local core -> Hashtbl.replace local_of_core core local) cores;
  let graph = Ugraph.create (Array.length cores) in
  let flows = soc.Soc_spec.flows in
  if flows <> [] then begin
    let max_bw = Flow.max_bandwidth flows in
    let min_lat = Flow.min_latency flows in
    let add_flow f =
      match
        ( Hashtbl.find_opt local_of_core f.Flow.src,
          Hashtbl.find_opt local_of_core f.Flow.dst )
      with
      | Some u, Some v ->
        Ugraph.add_edge graph u v (Flow.weight ~alpha ~max_bw ~min_lat f)
      | _ -> ()
    in
    List.iter add_flow flows
  end;
  { island; graph; cores; local_of_core }

let build_all ~alpha soc vi =
  Array.init vi.Vi.islands (fun island -> build ~alpha soc vi ~island)

let size t = Array.length t.cores
