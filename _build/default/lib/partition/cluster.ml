module Digraph = Noc_graph.Digraph
module Ugraph = Noc_graph.Ugraph

type constraints = {
  max_cluster_size : int;
  pinned_together : int list list;
}

let no_constraints = { max_cluster_size = max_int; pinned_together = [] }

(* Union-find over core ids, tracking cluster sizes. *)
module Uf = struct
  type t = { parent : int array; size : int array }

  let create n = { parent = Array.init n (fun i -> i); size = Array.make n 1 }

  let rec find t x =
    if t.parent.(x) = x then x
    else begin
      let root = find t t.parent.(x) in
      t.parent.(x) <- root;
      root
    end

  let union t a b =
    let ra = find t a and rb = find t b in
    if ra = rb then ra
    else begin
      let big, small = if t.size.(ra) >= t.size.(rb) then (ra, rb) else (rb, ra) in
      t.parent.(small) <- big;
      t.size.(big) <- t.size.(big) + t.size.(small);
      big
    end

  let size t x = t.size.(find t x)
end

let communication_based ?(seed = 0) ?(constraints = no_constraints) ~islands g =
  ignore seed;
  let n = Digraph.node_count g in
  if islands < 1 then invalid_arg "Cluster.communication_based: islands < 1";
  if islands > n then
    invalid_arg "Cluster.communication_based: more islands than cores";
  let uf = Uf.create n in
  let clusters = ref n in
  let merge a b =
    if Uf.find uf a <> Uf.find uf b then begin
      ignore (Uf.union uf a b);
      decr clusters
    end
  in
  (* Apply pinning groups first. *)
  let seen_pinned = Hashtbl.create 16 in
  let apply_group group =
    List.iter
      (fun c ->
        if c < 0 || c >= n then
          invalid_arg "Cluster.communication_based: pinned core out of range";
        if Hashtbl.mem seen_pinned c then
          invalid_arg "Cluster.communication_based: core pinned twice";
        Hashtbl.replace seen_pinned c ())
      group;
    match group with
    | [] -> ()
    | first :: rest ->
      List.iter (fun c -> merge first c) rest;
      if Uf.size uf first > constraints.max_cluster_size then
        invalid_arg "Cluster.communication_based: pinned group too large"
  in
  List.iter apply_group constraints.pinned_together;
  if !clusters < islands then
    invalid_arg "Cluster.communication_based: pinning leaves too few clusters";
  (* Symmetric bandwidth between cores. *)
  let affinity = Ugraph.of_digraph g in
  let edge_list =
    List.sort
      (fun (_, _, w1) (_, _, w2) -> compare w2 w1)
      (Ugraph.edges affinity)
  in
  let can_merge a b =
    Uf.find uf a <> Uf.find uf b
    && Uf.size uf a + Uf.size uf b <= constraints.max_cluster_size
  in
  (* Kruskal-style: heaviest bandwidth edges first. *)
  List.iter
    (fun (u, v, _) -> if !clusters > islands && can_merge u v then merge u v)
    edge_list;
  (* Fallback for disconnected traffic graphs: join the lightest clusters. *)
  while !clusters > islands do
    let roots = Hashtbl.create 16 in
    for v = 0 to n - 1 do
      let r = Uf.find uf v in
      if not (Hashtbl.mem roots r) then Hashtbl.replace roots r (Uf.size uf r)
    done;
    let sorted =
      List.sort
        (fun (r1, s1) (r2, s2) -> compare (s1, r1) (s2, r2))
        (Hashtbl.fold (fun r s acc -> (r, s) :: acc) roots [])
    in
    match sorted with
    | (a, sa) :: rest ->
      let mergeable =
        List.find_opt
          (fun (_, sb) -> sa + sb <= constraints.max_cluster_size)
          rest
      in
      (match mergeable with
       | Some (b, _) -> merge a b
       | None ->
         invalid_arg
           "Cluster.communication_based: max_cluster_size forbids reaching \
            the requested island count")
    | [] -> assert false
  done;
  (* Renumber islands by smallest member id. *)
  let root_to_min = Hashtbl.create 16 in
  for v = n - 1 downto 0 do
    Hashtbl.replace root_to_min (Uf.find uf v) v
  done;
  let mins =
    List.sort compare
      (Hashtbl.fold (fun _ min_id acc -> min_id :: acc) root_to_min [])
  in
  let min_to_island = Hashtbl.create 16 in
  List.iteri (fun i m -> Hashtbl.replace min_to_island m i) mins;
  Array.init n (fun v ->
      Hashtbl.find min_to_island (Hashtbl.find root_to_min (Uf.find uf v)))

let quality g assignment =
  let n = Digraph.node_count g in
  if Array.length assignment <> n then
    invalid_arg "Cluster.quality: assignment size mismatch";
  let total = ref 0.0 and internal = ref 0.0 in
  Digraph.iter_edges
    (fun u v w ->
      total := !total +. w;
      if assignment.(u) = assignment.(v) then internal := !internal +. w)
    g;
  if !total = 0.0 then 1.0 else !internal /. !total
