module Ugraph = Noc_graph.Ugraph

type bisection = {
  side : int array;
  cut : float;
  side_weight : float * float;
}

let epsilon = 1e-9

(* Visit order for the initial partition: BFS growth from [start] keeps the
   first side connected, which gives FM a much better starting cut than a
   random fill; stragglers from other components are appended shuffled. *)
let growth_order g start state =
  let n = Ugraph.node_count g in
  let seen = Array.make n false in
  let order = ref [] in
  let queue = Queue.create () in
  seen.(start) <- true;
  Queue.push start queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    order := u :: !order;
    let nbrs =
      List.sort (fun (_, w1) (_, w2) -> compare w2 w1) (Ugraph.neighbors g u)
    in
    let visit (v, _) =
      if not seen.(v) then begin
        seen.(v) <- true;
        Queue.push v queue
      end
    in
    List.iter visit nbrs
  done;
  let rest = ref [] in
  for v = n - 1 downto 0 do
    if not seen.(v) then rest := v :: !rest
  done;
  let rest = Array.of_list !rest in
  for i = Array.length rest - 1 downto 1 do
    let j = Random.State.int state (i + 1) in
    let t = rest.(i) in
    rest.(i) <- rest.(j);
    rest.(j) <- t
  done;
  List.rev_append !order (Array.to_list rest)

let initial_partition g ~target:(w0, w1) ~slack state =
  let n = Ugraph.node_count g in
  let side = Array.make n 1 in
  let start = Random.State.int state n in
  let order = growth_order g start state in
  let weight0 = ref 0.0 in
  let assign v =
    let wv = Ugraph.node_weight g v in
    if !weight0 +. wv <= w0 +. epsilon then begin
      side.(v) <- 0;
      weight0 := !weight0 +. wv
    end
  in
  List.iter assign order;
  (* Repair: if side 1 overflows its ceiling, pull light nodes over. *)
  let weight1 = ref 0.0 in
  Array.iteri
    (fun v s -> if s = 1 then weight1 := !weight1 +. Ugraph.node_weight g v)
    side;
  if !weight1 > w1 +. slack +. epsilon then begin
    let movable =
      List.filter (fun v -> side.(v) = 1) (List.init n (fun i -> i))
    in
    let movable =
      List.sort
        (fun a b -> compare (Ugraph.node_weight g a) (Ugraph.node_weight g b))
        movable
    in
    let try_move v =
      let wv = Ugraph.node_weight g v in
      if
        !weight1 > w1 +. slack +. epsilon
        && !weight0 +. wv <= w0 +. slack +. epsilon
      then begin
        side.(v) <- 0;
        weight0 := !weight0 +. wv;
        weight1 := !weight1 -. wv
      end
    in
    List.iter try_move movable
  end;
  if !weight1 > w1 +. slack +. epsilon || !weight0 > w0 +. slack +. epsilon
  then None
  else Some side

let side_weights g side =
  let w = [| 0.0; 0.0 |] in
  Array.iteri
    (fun v s -> w.(s) <- w.(s) +. Ugraph.node_weight g v)
    side;
  (w.(0), w.(1))

(* gain of moving v to the other side: external minus internal affinity *)
let gain g side v =
  List.fold_left
    (fun acc (u, w) -> if side.(u) <> side.(v) then acc +. w else acc -. w)
    0.0 (Ugraph.neighbors g v)

let fm_pass g side ~ceil0 ~ceil1 =
  let n = Ugraph.node_count g in
  let locked = Array.make n false in
  let w0, w1 = side_weights g side in
  let weight = [| w0; w1 |] in
  let ceils = [| ceil0; ceil1 |] in
  let moves = ref [] in
  let cumulative = ref 0.0 in
  let best_gain = ref 0.0 in
  let best_len = ref 0 in
  let len = ref 0 in
  let continue = ref true in
  while !continue do
    (* best feasible unlocked move *)
    let best_v = ref (-1) and best_g = ref neg_infinity in
    for v = 0 to n - 1 do
      if not locked.(v) then begin
        let other = 1 - side.(v) in
        let wv = Ugraph.node_weight g v in
        if weight.(other) +. wv <= ceils.(other) +. epsilon then begin
          let gv = gain g side v in
          if gv > !best_g then begin
            best_g := gv;
            best_v := v
          end
        end
      end
    done;
    if !best_v < 0 then continue := false
    else begin
      let v = !best_v in
      let wv = Ugraph.node_weight g v in
      weight.(side.(v)) <- weight.(side.(v)) -. wv;
      side.(v) <- 1 - side.(v);
      weight.(side.(v)) <- weight.(side.(v)) +. wv;
      locked.(v) <- true;
      moves := v :: !moves;
      incr len;
      cumulative := !cumulative +. !best_g;
      if !cumulative > !best_gain +. epsilon then begin
        best_gain := !cumulative;
        best_len := !len
      end
    end
  done;
  (* Roll back the suffix of moves past the best prefix. *)
  let all_moves = Array.of_list (List.rev !moves) in
  for i = Array.length all_moves - 1 downto !best_len do
    let v = all_moves.(i) in
    side.(v) <- 1 - side.(v)
  done;
  !best_gain

let bisect ?(seed = 0) ?(starts = 4) ?(max_passes = 8) ~target ~slack g =
  let n = Ugraph.node_count g in
  if n = 0 then invalid_arg "Fm.bisect: empty graph";
  let w0, w1 = target in
  if w0 < 0.0 || w1 < 0.0 || slack < 0.0 then
    invalid_arg "Fm.bisect: negative target or slack";
  let total = Ugraph.total_node_weight g in
  if total > w0 +. w1 +. (2.0 *. slack) +. epsilon then
    invalid_arg "Fm.bisect: targets cannot hold total node weight";
  let ceil0 = w0 +. slack and ceil1 = w1 +. slack in
  let best = ref None in
  for attempt = 0 to starts - 1 do
    let state = Random.State.make [| seed; attempt; n; 0x5151 |] in
    match initial_partition g ~target ~slack state with
    | None -> ()
    | Some side ->
      let improved = ref true in
      let passes = ref 0 in
      while !improved && !passes < max_passes do
        incr passes;
        let gained = fm_pass g side ~ceil0 ~ceil1 in
        improved := gained > epsilon
      done;
      let cut = Ugraph.cut_weight g side in
      let better =
        match !best with None -> true | Some (c, _) -> cut < c -. epsilon
      in
      if better then best := Some (cut, Array.copy side)
  done;
  (match !best with
   | Some _ -> ()
   | None ->
     (* deterministic fallback: largest-first into the side with more
        remaining capacity — succeeds whenever any split fits the
        ceilings *)
     let order =
       List.sort
         (fun a b -> compare (Ugraph.node_weight g b) (Ugraph.node_weight g a))
         (List.init n (fun i -> i))
     in
     let side = Array.make n 0 in
     let weight = [| 0.0; 0.0 |] in
     let ceils = [| ceil0; ceil1 |] in
     let feasible = ref true in
     let place v =
       let wv = Ugraph.node_weight g v in
       let room s = ceils.(s) -. weight.(s) in
       let s = if room 0 >= room 1 then 0 else 1 in
       if wv <= room s +. epsilon then begin
         side.(v) <- s;
         weight.(s) <- weight.(s) +. wv
       end
       else begin
         let other = 1 - s in
         if wv <= room other +. epsilon then begin
           side.(v) <- other;
           weight.(other) <- weight.(other) +. wv
         end
         else feasible := false
       end
     in
     List.iter place order;
     if !feasible then begin
       let improved = ref true in
       let passes = ref 0 in
       while !improved && !passes < max_passes do
         incr passes;
         improved := fm_pass g side ~ceil0 ~ceil1 > epsilon
       done;
       best := Some (Ugraph.cut_weight g side, side)
     end);
  match !best with
  | None -> invalid_arg "Fm.bisect: no feasible bisection found"
  | Some (cut, side) -> { side; cut; side_weight = side_weights g side }
