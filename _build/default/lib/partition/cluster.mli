(** Communication-based clustering of cores into voltage islands.

    The paper's evaluation compares two ways of assigning cores to VIs:
    {e logical partitioning} (by designer intent, an input) and
    {e communication-based partitioning}, where cores exchanging high
    bandwidth land in the same island so that hot flows never pay the
    island-crossing penalty.  This module implements the latter as
    agglomerative clustering on the core-to-core bandwidth graph, with an
    optional pinning constraint (e.g. shared memories that must share an
    always-on island). *)

type constraints = {
  max_cluster_size : int;
  (** hard ceiling on cores per island; [max_int] to disable *)
  pinned_together : int list list;
  (** each group is pre-merged before clustering starts *)
}

val no_constraints : constraints

val communication_based :
  ?seed:int ->
  ?constraints:constraints ->
  islands:int ->
  Noc_graph.Digraph.t ->
  int array
(** [communication_based ~islands bw_graph] assigns every core (node of the
    directed bandwidth graph) to an island id in [0 .. islands-1], greedily
    merging the cluster pair with the highest inter-cluster bandwidth until
    [islands] clusters remain.  Ties and zero-bandwidth merges fall back to
    joining the two lightest clusters, so the requested island count is
    always reached.  Island ids are renumbered by lowest member core id, so
    the result is deterministic.

    @raise Invalid_argument if [islands < 1] or [islands] exceeds the node
    count, or a pinned group repeats a core or would overflow
    [max_cluster_size]. *)

val quality : Noc_graph.Digraph.t -> int array -> float
(** Fraction of total bandwidth that stays inside islands (1.0 = all
    communication island-internal).  Used by tests and the exploration
    reports. *)
