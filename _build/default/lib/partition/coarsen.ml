module Ugraph = Noc_graph.Ugraph

type level = { coarse : Ugraph.t; node_map : int array }

let shuffled_order n seed =
  let order = Array.init n (fun i -> i) in
  let state = Random.State.make [| seed; n; 0x9e3779b9 |] in
  for i = n - 1 downto 1 do
    let j = Random.State.int state (i + 1) in
    let t = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- t
  done;
  order

let coarsen_once ?(seed = 0) g =
  let n = Ugraph.node_count g in
  let mate = Array.make n (-1) in
  let order = shuffled_order n seed in
  (* Heavy-edge matching: each unmatched node grabs its heaviest unmatched
     neighbor.  Ties broken by smaller node id for determinism at a fixed
     seed. *)
  Array.iter
    (fun u ->
      if mate.(u) = -1 then begin
        let best = ref (-1) and best_w = ref neg_infinity in
        let consider (v, w) =
          if mate.(v) = -1 && v <> u then
            if w > !best_w || (w = !best_w && (!best = -1 || v < !best)) then begin
              best := v;
              best_w := w
            end
        in
        List.iter consider (Ugraph.neighbors g u);
        if !best >= 0 then begin
          mate.(u) <- !best;
          mate.(!best) <- u
        end
      end)
    order;
  let node_map = Array.make n (-1) in
  let next = ref 0 in
  for v = 0 to n - 1 do
    if node_map.(v) = -1 then begin
      node_map.(v) <- !next;
      if mate.(v) >= 0 then node_map.(mate.(v)) <- !next;
      incr next
    end
  done;
  let coarse = Ugraph.create !next in
  let acc = Array.make !next 0.0 in
  for v = 0 to n - 1 do
    acc.(node_map.(v)) <- acc.(node_map.(v)) +. Ugraph.node_weight g v
  done;
  for c = 0 to !next - 1 do
    Ugraph.set_node_weight coarse c acc.(c)
  done;
  Ugraph.iter_edges
    (fun u v w ->
      let cu = node_map.(u) and cv = node_map.(v) in
      if cu <> cv then Ugraph.add_edge coarse cu cv w)
    g;
  { coarse; node_map }

let project level coarse_part =
  if Array.length coarse_part <> Ugraph.node_count level.coarse then
    invalid_arg "Coarsen.project: partition size mismatch";
  Array.map (fun c -> coarse_part.(c)) level.node_map
