lib/partition/fm.mli: Noc_graph
