lib/partition/cluster.ml: Array Hashtbl List Noc_graph
