lib/partition/fm.ml: Array List Noc_graph Queue Random
