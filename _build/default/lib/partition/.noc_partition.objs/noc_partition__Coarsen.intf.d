lib/partition/coarsen.mli: Noc_graph
