lib/partition/coarsen.ml: Array List Noc_graph Random
