lib/partition/kway.mli: Noc_graph
