lib/partition/kway.ml: Array Coarsen Float Fm List Noc_graph Printf
