lib/partition/cluster.mli: Noc_graph
