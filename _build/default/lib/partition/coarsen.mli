(** Heavy-edge-matching coarsening for multilevel min-cut partitioning.

    Pairs of nodes joined by heavy edges are merged into super-nodes whose
    node weight is the sum of the pair's weights; parallel edges between
    super-nodes accumulate.  One level roughly halves the node count on
    well-connected graphs. *)

type level = {
  coarse : Noc_graph.Ugraph.t;
  (** the coarsened graph *)
  node_map : int array;
  (** [node_map.(v)] = coarse node holding fine node [v] *)
}

val coarsen_once : ?seed:int -> Noc_graph.Ugraph.t -> level
(** One level of heavy-edge matching.  [seed] randomizes the visit order so
    repeated partitioning attempts explore different matchings. *)

val project : level -> int array -> int array
(** [project level coarse_part] lifts a partition vector of the coarse graph
    back to the fine graph. *)
