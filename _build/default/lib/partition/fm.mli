(** Fiduccia–Mattheyses-style bisection of a weighted undirected graph.

    Produces a two-way partition minimizing the cut weight subject to a
    per-side node-weight ceiling.  Several randomized starts are tried and
    the best kept, so results are deterministic for a fixed [seed]. *)

type bisection = {
  side : int array;       (** 0 or 1 per node *)
  cut : float;            (** weight of edges across the bisection *)
  side_weight : float * float;
}

val bisect :
  ?seed:int ->
  ?starts:int ->
  ?max_passes:int ->
  target:float * float ->
  slack:float ->
  Noc_graph.Ugraph.t ->
  bisection
(** [bisect ~target:(w0, w1) ~slack g] splits [g] in two sides whose node
    weights aim at [w0] and [w1]; a side may exceed its target by at most
    [slack] (absolute node weight).  [starts] independent randomized initial
    partitions are each refined with at most [max_passes] FM passes.

    @raise Invalid_argument if [g] is empty, or the targets (with slack)
    cannot accommodate the total node weight, or some single node outweighs
    [max w0 w1 + slack]. *)
